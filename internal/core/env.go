// Package core implements the paper's contribution: answering regular path
// queries over workflow provenance with derivation-based reachability
// labels.
//
// Compile intersects the workflow specification G with the minimal DFA of a
// query R (conceptually producing the fine-grained specification G_R of
// Section III-B — realized not as an explicit grammar but as per-production
// state-transition matrices), checks the safety of R w.r.t. G (Section
// III-C), and, for safe queries, answers
//
//   - pairwise queries u —R→ v in constant time from the two labels alone
//     (Algorithm 1 / Theorem 1), and
//   - all-pairs queries over node lists with either a nested-loop scan (the
//     paper's Option S1, "RPL") or a reachability-filtered scan driven by
//     the output-linear tree algorithm (Option S2, "optRPL"; Section IV-A).
//
// General (unsafe) queries are decomposed into maximal safe subtrees plus a
// relational remainder (Section IV-B "Our approach") in general.go.
package core

import (
	"fmt"

	"provrpq/internal/automata"
	"provrpq/internal/wf"
)

// Env is a query compiled against a specification: the minimal DFA, the
// per-module dependency matrices λ, the safety verdict, and (for safe
// queries) the decode artifacts.
type Env struct {
	Spec  *wf.Spec
	Query *automata.Node
	DFA   *automata.DFA
	// NQ is the minimal DFA's state count.
	NQ int
	// Lambda[m] is the input-to-output transition matrix shared by all
	// executions of module m. Valid only when Safe (for unsafe queries the
	// matrices of some module differ across executions).
	Lambda []Mat
	// Safe reports whether the query is safe w.r.t. the specification
	// (Definition 13, checked on the minimal DFA per Lemma 3.2).
	Safe bool
	// UnsafeModule and UnsafeProd witness the violation when !Safe: the
	// production whose matrix disagreed with the module's established λ.
	UnsafeModule wf.ModuleID
	UnsafeProd   int
	// DisableRangeCache turns off the chain-range product memo (ablation
	// knob: the decode falls back to recomputing loop-power products per
	// pair).
	DisableRangeCache bool

	art *artifacts // built lazily for safe queries
}

// Compile builds the query environment: minimal DFA over the specification's
// tag alphabet, λ computation, and the safety verdict. It errors only on
// structural impossibilities (too many DFA states); unsafe queries compile
// fine and report Safe == false.
func Compile(spec *wf.Spec, query *automata.Node) (*Env, error) {
	dfa := automata.CompileDFA(query, spec.Tags())
	if dfa.NumStates() > 64 {
		return nil, fmt.Errorf("core: minimal DFA has %d states; this implementation supports at most 64", dfa.NumStates())
	}
	e := &Env{
		Spec:         spec,
		Query:        query,
		DFA:          dfa,
		NQ:           dfa.NumStates(),
		UnsafeModule: -1,
		UnsafeProd:   -1,
	}
	e.computeLambda()
	return e, nil
}

// tagMat returns the single-symbol transition matrix T of an edge tag:
// T[q][δ(q,tag)] = 1.
func (e *Env) tagMat(tag string) Mat {
	m := NewMat(e.NQ)
	for q := 0; q < e.NQ; q++ {
		m.Set(q, e.DFA.Step(q, tag))
	}
	return m
}

// computeLambda runs the worklist of Section III-C (adapted from the
// CFG-emptiness algorithm): λ of an atomic module is the identity; a
// production is verifiable once every body module has λ; the first
// verifiable production of a module defines λ, later ones must agree or the
// DFA is unsafe. Productivity of the grammar (enforced by wf.New) guarantees
// every module's λ is eventually defined.
func (e *Env) computeLambda() {
	s := e.Spec
	e.Lambda = make([]Mat, len(s.Modules))
	for i := range s.Modules {
		if !s.IsComposite(wf.ModuleID(i)) {
			e.Lambda[i] = Identity(e.NQ)
		}
	}
	e.Safe = true
	pending := make([]bool, len(s.Prods))
	for i := range pending {
		pending[i] = true
	}
	for changed := true; changed; {
		changed = false
		for k := range s.Prods {
			if !pending[k] {
				continue
			}
			p := &s.Prods[k]
			ready := true
			for _, m := range p.Body.Nodes {
				if e.Lambda[m] == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			pending[k] = false
			changed = true
			cand := e.prodLambda(k)
			switch {
			case e.Lambda[p.LHS] == nil:
				e.Lambda[p.LHS] = cand
			case !e.Lambda[p.LHS].Eq(cand):
				if e.Safe {
					e.Safe = false
					e.UnsafeModule = p.LHS
					e.UnsafeProd = k
				}
			}
		}
	}
}

// prodLambda computes the input-to-output matrix of one production body by
// a forward DP over the (acyclic) fine-grained body: D[c] maps states at
// the body input to states at node c's input; traversing node c applies
// λ(module(c)) and an edge (c, c2, tag) applies the tag's transition.
func (e *Env) prodLambda(k int) Mat {
	in := e.bodyInMats(k)
	sink := e.Spec.Sink(k)
	return in[sink].Mul(e.Lambda[e.Spec.Prods[k].Body.Nodes[sink]])
}

// bodyInMats returns, for every body node c of production k, the matrix
// from the body input (input port of the source node) to the input port of
// c. Requires λ for all body modules.
func (e *Env) bodyInMats(k int) []Mat {
	p := &e.Spec.Prods[k]
	n := len(p.Body.Nodes)
	d := make([]Mat, n)
	for _, c := range e.bodyTopo(k) {
		if d[c] == nil {
			if c == e.Spec.Source(k) {
				d[c] = Identity(e.NQ)
			} else {
				d[c] = NewMat(e.NQ) // unreachable from source: impossible in well-formed bodies
			}
		}
		out := d[c].Mul(e.Lambda[p.Body.Nodes[c]])
		for _, be := range p.Body.Edges {
			if be.From != c {
				continue
			}
			step := out.Mul(e.tagMat(be.Tag))
			if d[be.To] == nil {
				d[be.To] = step
			} else {
				d[be.To].OrInPlace(step)
			}
		}
	}
	return d
}

// bodyOutMats returns, for every body node c, the matrix from the output
// port of c to the body output (output port of the sink node).
func (e *Env) bodyOutMats(k int) []Mat {
	p := &e.Spec.Prods[k]
	n := len(p.Body.Nodes)
	u := make([]Mat, n)
	topo := e.bodyTopo(k)
	for i := len(topo) - 1; i >= 0; i-- {
		c := topo[i]
		if c == e.Spec.Sink(k) {
			u[c] = Identity(e.NQ)
			continue
		}
		u[c] = NewMat(e.NQ)
		for _, be := range p.Body.Edges {
			if be.From != c {
				continue
			}
			// out(c) -tag-> in(To) -λ-> out(To) -u[To]-> out(sink)
			step := e.tagMat(be.Tag).Mul(e.Lambda[p.Body.Nodes[be.To]]).Mul(u[be.To])
			u[c].OrInPlace(step)
		}
	}
	return u
}

// bodyTopo returns a topological order of production k's body nodes.
func (e *Env) bodyTopo(k int) []int {
	p := &e.Spec.Prods[k]
	n := len(p.Body.Nodes)
	indeg := make([]int, n)
	for _, be := range p.Body.Edges {
		indeg[be.To]++
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, be := range p.Body.Edges {
			if be.From != v {
				continue
			}
			indeg[be.To]--
			if indeg[be.To] == 0 {
				queue = append(queue, be.To)
			}
		}
	}
	return order
}

// AcceptMask returns the bitset of accepting DFA states.
func (e *Env) AcceptMask() uint64 {
	var mask uint64
	for q := 0; q < e.NQ; q++ {
		if e.DFA.Accept[q] {
			mask |= 1 << uint(q)
		}
	}
	return mask
}

// MatchesEmpty reports whether ε ∈ L(R), i.e. whether a node trivially
// R-reaches itself.
func (e *Env) MatchesEmpty() bool { return e.DFA.Accept[e.DFA.Start] }
