// Package core implements the paper's contribution: answering regular path
// queries over workflow provenance with derivation-based reachability
// labels.
//
// Compile intersects the workflow specification G with the minimal DFA of a
// query R (conceptually producing the fine-grained specification G_R of
// Section III-B — realized not as an explicit grammar but as per-production
// state-transition matrices), checks the safety of R w.r.t. G (Section
// III-C), and, for safe queries, answers
//
//   - pairwise queries u —R→ v in constant time from the two labels alone
//     (Algorithm 1 / Theorem 1), and
//   - all-pairs queries over node lists with either a nested-loop scan (the
//     paper's Option S1, "RPL") or a reachability-filtered scan driven by
//     the output-linear tree algorithm (Option S2, "optRPL"; Section IV-A).
//
// General (unsafe) queries are decomposed into maximal safe subtrees plus a
// relational remainder (Section IV-B "Our approach") in general.go.
//
// # Concurrency
//
// A compiled Env depends only on (Spec, query), never on a run, so it is
// shared freely: after Compile returns, every exported method is safe for
// concurrent use by any number of goroutines. The safety verdict, λ table
// and decode artifacts live in an immutable state record behind an atomic
// pointer; RelaxSafety is the only transition, publishing a complete
// replacement state at most once. The mutable per-scan memo tables
// (chain-power and range caches) are owned by Decoder values — one per
// goroutine in parallel scans, pooled per state for the convenience entry
// points — so the decode hot path never locks.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"provrpq/internal/automata"
	"provrpq/internal/wf"
)

// Env is a query compiled against a specification: the minimal DFA, the
// per-module dependency matrices λ, the safety verdict, and (for safe
// queries) the decode artifacts. An Env is immutable up to the single
// RelaxSafety transition and safe for concurrent use; see the package
// comment.
//
//provrpq:immutable
type Env struct {
	Spec  *wf.Spec
	Query *automata.Node
	DFA   *automata.DFA
	// NQ is the minimal DFA's state count.
	NQ int
	// DisableRangeCache turns off the chain-range product memo (ablation
	// knob: the decode falls back to recomputing loop-power products per
	// pair). It must be set before the first decode and never concurrently
	// with one.
	DisableRangeCache bool

	// state holds everything the safety verdict governs. It is replaced
	// wholesale (never mutated) when RelaxSafety upgrades the verdict.
	state atomic.Pointer[envState]

	// relaxMu serializes RelaxSafety; relaxTried (guarded by it) makes a
	// failed relaxation sticky so the fixpoint never reruns.
	//
	//provrpq:lockrank relaxMu 50
	relaxMu    sync.Mutex
	relaxTried bool

	// reqOnce/reqSyms memoize RequiredSyms. They depend only on the minimal
	// DFA (never on the safety verdict), so one computation serves every
	// engine sharing this compiled plan.
	reqOnce sync.Once
	reqSyms []string
}

// envState is one published safety verdict: the λ table that produced it
// and, for safe verdicts, the lazily built decode artifacts plus a pool of
// decoders warmed against them. All fields except the sync.Once-guarded art
// are written before the state is published and read-only afterwards.
type envState struct {
	lambda       []Mat
	safe         bool
	unsafeModule wf.ModuleID
	unsafeProd   int

	artOnce sync.Once
	art     *artifacts
	decPool sync.Pool // of *Decoder bound to this state
}

// Compile builds the query environment: minimal DFA over the specification's
// tag alphabet, λ computation, and the safety verdict. It errors only on
// structural impossibilities (too many DFA states); unsafe queries compile
// fine and report Safe() == false.
func Compile(spec *wf.Spec, query *automata.Node) (*Env, error) {
	dfa := automata.CompileDFA(query, spec.Tags())
	if dfa.NumStates() > 64 {
		return nil, fmt.Errorf("core: minimal DFA has %d states; this implementation supports at most 64", dfa.NumStates())
	}
	e := &Env{
		Spec:  spec,
		Query: query,
		DFA:   dfa,
		NQ:    dfa.NumStates(),
	}
	e.publish(e.computeLambda())
	return e, nil
}

// publish installs a state record and arms its decoder pool.
func (e *Env) publish(st *envState) {
	st.decPool.New = func() any { return e.newDecoder(st) }
	e.state.Store(st)
}

// Safe reports whether the query is safe w.r.t. the specification
// (Definition 13, checked on the minimal DFA per Lemma 3.2), or has been
// upgraded by RelaxSafety.
func (e *Env) Safe() bool { return e.state.Load().safe }

// Lambda returns the per-module input-to-output transition matrices shared
// by all executions of each module. The table is valid only when Safe (for
// unsafe queries the matrices of some module differ across executions).
// Callers must not mutate the returned matrices.
func (e *Env) Lambda() []Mat { return e.state.Load().lambda }

// UnsafeModule and UnsafeProd witness the violation when !Safe(): the
// production whose matrix disagreed with the module's established λ. Both
// return -1 when the query is safe.
func (e *Env) UnsafeModule() wf.ModuleID { return e.state.Load().unsafeModule }

// UnsafeProd returns the production index of the unsafety witness, -1 when
// safe.
func (e *Env) UnsafeProd() int { return e.state.Load().unsafeProd }

// tagMat returns the single-symbol transition matrix T of an edge tag:
// T[q][δ(q,tag)] = 1.
func (e *Env) tagMat(tag string) Mat {
	m := NewMat(e.NQ)
	for q := 0; q < e.NQ; q++ {
		m.Set(q, e.DFA.Step(q, tag))
	}
	return m
}

// computeLambda runs the worklist of Section III-C (adapted from the
// CFG-emptiness algorithm): λ of an atomic module is the identity; a
// production is verifiable once every body module has λ; the first
// verifiable production of a module defines λ, later ones must agree or the
// DFA is unsafe. Productivity of the grammar (enforced by wf.New) guarantees
// every module's λ is eventually defined.
func (e *Env) computeLambda() *envState {
	s := e.Spec
	st := &envState{
		lambda:       make([]Mat, len(s.Modules)),
		safe:         true,
		unsafeModule: -1,
		unsafeProd:   -1,
	}
	lam := st.lambda
	for i := range s.Modules {
		if !s.IsComposite(wf.ModuleID(i)) {
			lam[i] = Identity(e.NQ)
		}
	}
	pending := make([]bool, len(s.Prods))
	for i := range pending {
		pending[i] = true
	}
	for changed := true; changed; {
		changed = false
		for k := range s.Prods {
			if !pending[k] {
				continue
			}
			p := &s.Prods[k]
			ready := true
			for _, m := range p.Body.Nodes {
				if lam[m] == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			pending[k] = false
			changed = true
			cand := e.prodLambda(lam, k)
			switch {
			case lam[p.LHS] == nil:
				lam[p.LHS] = cand
			case !lam[p.LHS].Eq(cand):
				if st.safe {
					st.safe = false
					st.unsafeModule = p.LHS
					st.unsafeProd = k
				}
			}
		}
	}
	return st
}

// prodLambda computes the input-to-output matrix of one production body by
// a forward DP over the (acyclic) fine-grained body: D[c] maps states at
// the body input to states at node c's input; traversing node c applies
// λ(module(c)) and an edge (c, c2, tag) applies the tag's transition.
func (e *Env) prodLambda(lam []Mat, k int) Mat {
	in := e.bodyInMats(lam, k)
	sink := e.Spec.Sink(k)
	return in[sink].Mul(lam[e.Spec.Prods[k].Body.Nodes[sink]])
}

// bodyInMats returns, for every body node c of production k, the matrix
// from the body input (input port of the source node) to the input port of
// c, composed through the given λ table. Requires λ for all body modules.
func (e *Env) bodyInMats(lam []Mat, k int) []Mat {
	p := &e.Spec.Prods[k]
	n := len(p.Body.Nodes)
	d := make([]Mat, n)
	for _, c := range e.bodyTopo(k) {
		if d[c] == nil {
			if c == e.Spec.Source(k) {
				d[c] = Identity(e.NQ)
			} else {
				d[c] = NewMat(e.NQ) // unreachable from source: impossible in well-formed bodies
			}
		}
		out := d[c].Mul(lam[p.Body.Nodes[c]])
		for _, be := range p.Body.Edges {
			if be.From != c {
				continue
			}
			step := out.Mul(e.tagMat(be.Tag))
			if d[be.To] == nil {
				d[be.To] = step
			} else {
				d[be.To].OrInPlace(step)
			}
		}
	}
	return d
}

// bodyOutMats returns, for every body node c, the matrix from the output
// port of c to the body output (output port of the sink node).
func (e *Env) bodyOutMats(lam []Mat, k int) []Mat {
	p := &e.Spec.Prods[k]
	n := len(p.Body.Nodes)
	u := make([]Mat, n)
	topo := e.bodyTopo(k)
	for i := len(topo) - 1; i >= 0; i-- {
		c := topo[i]
		if c == e.Spec.Sink(k) {
			u[c] = Identity(e.NQ)
			continue
		}
		u[c] = NewMat(e.NQ)
		for _, be := range p.Body.Edges {
			if be.From != c {
				continue
			}
			// out(c) -tag-> in(To) -λ-> out(To) -u[To]-> out(sink)
			step := e.tagMat(be.Tag).Mul(lam[p.Body.Nodes[be.To]]).Mul(u[be.To])
			u[c].OrInPlace(step)
		}
	}
	return u
}

// bodyTopo returns a topological order of production k's body nodes.
func (e *Env) bodyTopo(k int) []int {
	p := &e.Spec.Prods[k]
	n := len(p.Body.Nodes)
	indeg := make([]int, n)
	for _, be := range p.Body.Edges {
		indeg[be.To]++
	}
	var queue, order []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, be := range p.Body.Edges {
			if be.From != v {
				continue
			}
			indeg[be.To]--
			if indeg[be.To] == 0 {
				queue = append(queue, be.To)
			}
		}
	}
	return order
}

// RequiredSyms returns the query symbols every accepted word must contain
// (ascending by name), computed on the minimal DFA and memoized with the
// compiled plan. Any run path matching the query traverses an edge tagged
// with each of these symbols, which is what the selectivity planner's
// seeded strategy exploits. Callers must not mutate the returned slice.
//
//provrpq:mutator
func (e *Env) RequiredSyms() []string {
	e.reqOnce.Do(func() {
		for _, sym := range e.Query.Symbols() {
			if e.DFA.Requires(sym) {
				e.reqSyms = append(e.reqSyms, sym)
			}
		}
	})
	return e.reqSyms
}

// AcceptMask returns the bitset of accepting DFA states.
func (e *Env) AcceptMask() uint64 {
	var mask uint64
	for q := 0; q < e.NQ; q++ {
		if e.DFA.Accept[q] {
			mask |= 1 << uint(q)
		}
	}
	return mask
}

// MatchesEmpty reports whether ε ∈ L(R), i.e. whether a node trivially
// R-reaches itself.
func (e *Env) MatchesEmpty() bool { return e.DFA.Accept[e.DFA.Start] }
