package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(r *rand.Rand, n int) Mat {
	m := NewMat(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 {
				m.Set(i, j)
			}
		}
	}
	return m
}

func naiveMul(a, b Mat) Mat {
	n := len(a)
	c := NewMat(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if a.Get(i, k) && b.Get(k, j) {
					c.Set(i, j)
				}
			}
		}
	}
	return c
}

func TestMulMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		a, b := randMat(r, n), randMat(r, n)
		if got, want := a.Mul(b), naiveMul(a, b); !got.Eq(want) {
			t.Fatalf("Mul mismatch:\n%s *\n%s =\n%s want\n%s", a, b, got, want)
		}
	}
}

func TestMulAssociativeAndIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(10)
		a, b, c := randMat(r, n), randMat(r, n), randMat(r, n)
		if !a.Mul(b).Mul(c).Eq(a.Mul(b.Mul(c))) {
			t.Fatal("Mul not associative")
		}
		id := Identity(n)
		if !a.Mul(id).Eq(a) || !id.Mul(a).Eq(a) {
			t.Fatal("identity law violated")
		}
	}
}

func TestMatQuickProperties(t *testing.T) {
	// Or is monotone w.r.t. Mul: (a∪b)·c ⊇ a·c.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, b, c := randMat(r, n), randMat(r, n), randMat(r, n)
		ab := a.Clone()
		ab.OrInPlace(b)
		left := ab.Mul(c)
		right := a.Mul(c)
		for i := 0; i < n; i++ {
			if right[i]&^left[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowSeq(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(6)
		base := randMat(r, n)
		ps := newPowSeq(base)
		want := base.Clone()
		for e := 1; e <= 40; e++ {
			got := ps.power(e)
			if !got.Eq(want) {
				t.Fatalf("power(%d) mismatch for base\n%s", e, base)
			}
			want = want.Mul(base)
		}
		// Random access far beyond the period.
		big := 1 << 20
		naive := Identity(n)
		// base^big via fast exponentiation for the check.
		exp, sq := big, base.Clone()
		for exp > 0 {
			if exp&1 == 1 {
				naive = naive.Mul(sq)
			}
			sq = sq.Mul(sq)
			exp >>= 1
		}
		if !ps.power(big).Eq(naive) {
			t.Fatalf("power(%d) mismatch", big)
		}
	}
}

func TestMatHelpers(t *testing.T) {
	m := NewMat(3)
	if !m.IsZero() {
		t.Error("new matrix should be zero")
	}
	m.Set(1, 2)
	if m.IsZero() || !m.Get(1, 2) || m.Get(2, 1) {
		t.Error("Set/Get broken")
	}
	c := m.Clone()
	c.Set(0, 0)
	if m.Get(0, 0) {
		t.Error("Clone aliases")
	}
	if m.key() == c.key() {
		t.Error("key should distinguish different matrices")
	}
	if m.String() == "" {
		t.Error("String should render something")
	}
}
