package core

import (
	"fmt"
	"sync"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// GeneralStrategy selects how the general evaluator treats safe subtrees.
type GeneralStrategy int

const (
	// LargestSafeSubtree is the paper's approach (Section IV-B): walk the
	// parse tree top-down and evaluate every maximal safe subtree with
	// optRPL, the remainder with relational operators (Option G1).
	LargestSafeSubtree GeneralStrategy = iota
	// CostBased additionally estimates, per maximal safe subtree, whether
	// the label-based evaluation or the relational one is cheaper, using
	// index statistics (the paper's future-work item 1: a cost model to
	// predict intermediate result sizes).
	CostBased
	// RelationalOnly disables safe subtrees entirely (this is exactly
	// Option G1; exposed for ablations).
	RelationalOnly
)

// EnvSource supplies compiled query environments. It must be safe for
// concurrent use; internal/plancache implements it with a shared,
// singleflight-deduplicated LRU.
type EnvSource interface {
	Get(spec *wf.Spec, query *automata.Node) (*Env, error)
}

// GeneralOptions tune a General evaluator.
type GeneralOptions struct {
	// Envs, when non-nil, supplies compiled subquery environments (so
	// evaluators over different runs of one spec share plans). When nil the
	// evaluator compiles and caches privately.
	Envs EnvSource
	// Workers bounds the worker pool of safe-subtree all-pairs scans:
	// 0 means one worker per CPU, 1 forces serial scans.
	Workers int
}

// General evaluates arbitrary — in particular unsafe — regular path queries
// over one run by composing safe-subtree results with relational joins.
// A General is safe for concurrent use.
type General struct {
	run      *derive.Run
	ix       *index.Index
	g1       *baseline.G1
	strategy GeneralStrategy
	workers  int

	source EnvSource
	// envs fronts the source (or the private compiles when source is nil)
	// with a lock-free hit path; it also pins every plan the evaluator has
	// resolved against shared-cache eviction.
	envs sync.Map // query string -> *Env

	labels []label.Label // per node id
	ids    []derive.NodeID
}

// EvalReport describes how a query was decomposed.
type EvalReport struct {
	// SafeSubtrees lists the maximal safe subtrees evaluated with labels.
	SafeSubtrees []string
	// RelationalNodes counts parse-tree nodes evaluated relationally.
	RelationalNodes int
	// Safe reports whether the whole query was safe.
	Safe bool
}

// NewGeneral builds a general evaluator over a run and its index with
// default options (private plan cache, serial scans).
func NewGeneral(run *derive.Run, ix *index.Index, strategy GeneralStrategy) *General {
	return NewGeneralOpts(run, ix, strategy, GeneralOptions{Workers: 1})
}

// NewGeneralOpts builds a general evaluator with explicit options.
func NewGeneralOpts(run *derive.Run, ix *index.Index, strategy GeneralStrategy, opts GeneralOptions) *General {
	g := &General{
		run:      run,
		ix:       ix,
		g1:       baseline.NewG1(ix),
		strategy: strategy,
		workers:  opts.Workers,
		source:   opts.Envs,
	}
	for _, id := range run.AllNodes() {
		g.ids = append(g.ids, id)
		g.labels = append(g.labels, run.Label(id))
	}
	return g
}

// Eval returns the full result relation of the query over the run, along
// with a decomposition report.
func (g *General) Eval(q *automata.Node) (*baseline.Rel, *EvalReport, error) {
	q = automata.Simplify(q)
	rep := &EvalReport{}
	env, err := g.envFor(q)
	if err != nil {
		return nil, nil, err
	}
	rep.Safe = env.Safe()
	rel, err := g.eval(q, rep)
	if err != nil {
		return nil, nil, err
	}
	return rel, rep, nil
}

// Plan reports the decomposition Eval would use, without evaluating
// anything: which maximal safe subtrees would be answered with labels and
// how many parse-tree nodes remain relational.
func (g *General) Plan(q *automata.Node) (*EvalReport, error) {
	q = automata.Simplify(q)
	rep := &EvalReport{}
	env, err := g.envFor(q)
	if err != nil {
		return nil, err
	}
	rep.Safe = env.Safe()
	if err := g.plan(q, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func (g *General) plan(q *automata.Node, rep *EvalReport) error {
	if g.strategy != RelationalOnly && q.Kind != automata.KindSym &&
		q.Kind != automata.KindWild && q.Kind != automata.KindEps {
		env, err := g.envFor(q)
		if err != nil {
			return err
		}
		if env.Safe() && (g.strategy != CostBased || g.safeCheaper(q)) {
			rep.SafeSubtrees = append(rep.SafeSubtrees, q.String())
			return nil
		}
	}
	rep.RelationalNodes++
	for _, c := range q.Children {
		if err := g.plan(c, rep); err != nil {
			return err
		}
	}
	return nil
}

func (g *General) envFor(q *automata.Node) (*Env, error) {
	key := q.String()
	if v, ok := g.envs.Load(key); ok {
		return v.(*Env), nil
	}
	var e *Env
	var err error
	if g.source != nil {
		e, err = g.source.Get(g.run.Spec, q)
	} else {
		e, err = Compile(g.run.Spec, q)
	}
	if err != nil {
		return nil, err
	}
	// A concurrent resolve of the same subquery may have won; keep the
	// first so every caller shares one Env.
	v, _ := g.envs.LoadOrStore(key, e)
	return v.(*Env), nil
}

func (g *General) eval(q *automata.Node, rep *EvalReport) (*baseline.Rel, error) {
	if g.strategy != RelationalOnly && q.Kind != automata.KindSym &&
		q.Kind != automata.KindWild && q.Kind != automata.KindEps {
		env, err := g.envFor(q)
		if err != nil {
			return nil, err
		}
		if env.Safe() && (g.strategy != CostBased || g.safeCheaper(q)) {
			rep.SafeSubtrees = append(rep.SafeSubtrees, q.String())
			return g.safeEval(env)
		}
	}
	rep.RelationalNodes++
	switch q.Kind {
	case automata.KindSym, automata.KindWild, automata.KindEps:
		return g.g1.Eval(q), nil
	case automata.KindConcat:
		if len(q.Children) == 0 {
			return g.g1.Eval(automata.Eps()), nil
		}
		rel, err := g.eval(q.Children[0], rep)
		if err != nil {
			return nil, err
		}
		for _, c := range q.Children[1:] {
			next, err := g.eval(c, rep)
			if err != nil {
				return nil, err
			}
			rel = rel.Join(next)
		}
		return rel, nil
	case automata.KindAlt:
		out := baseline.NewRel()
		for _, c := range q.Children {
			r, err := g.eval(c, rep)
			if err != nil {
				return nil, err
			}
			out = out.Union(r)
		}
		return out, nil
	case automata.KindStar:
		r, err := g.eval(q.Children[0], rep)
		if err != nil {
			return nil, err
		}
		return r.Closure().Union(baseline.IdentityRel(g.run)), nil
	case automata.KindPlus:
		r, err := g.eval(q.Children[0], rep)
		if err != nil {
			return nil, err
		}
		return r.Closure(), nil
	case automata.KindOpt:
		r, err := g.eval(q.Children[0], rep)
		if err != nil {
			return nil, err
		}
		return r.Union(baseline.IdentityRel(g.run)), nil
	}
	return nil, fmt.Errorf("core: unknown query node kind %d", q.Kind)
}

// safeEval computes the subquery's relation over all node pairs with optRPL,
// sharded across the evaluator's worker pool.
func (g *General) safeEval(env *Env) (*baseline.Rel, error) {
	out := baseline.NewRel()
	err := env.AllPairsSafeParallel(g.labels, g.labels, OptRPL, g.workers, func(i, j int) {
		out.Add(g.ids[i], g.ids[j])
	})
	return out, err
}

// safeCheaper is the cost model (future work 1): label-based evaluation
// costs about one coarse filter plus a decode per reachable pair, bounded by
// n²; the relational evaluation costs roughly the sum of its intermediate
// result sizes, estimated from index statistics.
func (g *General) safeCheaper(q *automata.Node) bool {
	n := len(g.ids)
	safeCost := float64(n) * float64(n) / 4 // coarse filter prunes; decodes dominate
	return g.relCost(q) >= safeCost
}

// relCost estimates the relational evaluation cost of a subtree as the sum
// of estimated intermediate sizes; closures multiply by an iteration factor.
func (g *General) relCost(q *automata.Node) float64 {
	n := float64(len(g.ids))
	if n == 0 {
		return 0
	}
	size, cost := g.relEstimate(q)
	_ = size
	return cost
}

// relEstimate returns (estimated result size, estimated total cost).
func (g *General) relEstimate(q *automata.Node) (size, cost float64) {
	n := float64(len(g.ids))
	switch q.Kind {
	case automata.KindSym:
		s := float64(g.ix.Count(q.Sym))
		return s, s
	case automata.KindWild:
		s := float64(g.run.NumEdges())
		return s, s
	case automata.KindEps:
		return n, n
	case automata.KindConcat:
		size, cost = 1, 0
		first := true
		for _, c := range q.Children {
			cs, cc := g.relEstimate(c)
			cost += cc
			if first {
				size = cs
				first = false
				continue
			}
			// Join selectivity: assume uniform endpoints.
			size = size * cs / maxf(n, 1)
			cost += size
		}
		return size, cost
	case automata.KindAlt:
		for _, c := range q.Children {
			cs, cc := g.relEstimate(c)
			size += cs
			cost += cc
		}
		return size, cost
	case automata.KindStar, automata.KindPlus:
		cs, cc := g.relEstimate(q.Children[0])
		// Semi-naive closure: ~ depth iterations of delta joins; the result
		// can approach n² for dense chains.
		est := minf(cs*cs, n*n)
		return est, cc + est*4
	case automata.KindOpt:
		cs, cc := g.relEstimate(q.Children[0])
		return cs + n, cc + n
	}
	return 0, 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
