// Package reach implements constant-time pairwise reachability decoding from
// derivation-based labels and the output-linear all-pairs reachability
// algorithm (the reconstruction of reference [4]'s decoder π and the
// skeleton of the paper's Algorithm 2).
//
// Pairwise decoding never touches the run: it compares the two labels, finds
// the compressed-parse-tree divergence (their longest common prefix) and
// consults only the specification:
//
//   - divergence under a composite node with entries (k,i), (k,j):
//     u ⇝ v iff body node i reaches body node j in production k
//     (well-formed bodies guarantee u reaches the output of its enclosing
//     subtree and v is reachable from the input of its enclosing subtree);
//
//   - divergence under a recursive R node with entries (s,t,i), (s,t,j):
//     for i < j, u ⇝ v iff u's child position can reach the cycle-successor
//     position within iteration i's production (the *red* condition);
//     for i > j, u ⇝ v iff the cycle-successor position reaches v's child
//     position within iteration j's production (the *blue* condition).
package reach

import (
	"bytes"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// Pairwise reports whether the node labeled a reaches the node labeled b in
// any run of spec that contains both (the answer is independent of the run:
// that is the point of derivation-based labels). Nodes reach themselves via
// the empty path.
func Pairwise(spec *wf.Spec, a, b label.Label) bool {
	if label.Equal(a, b) {
		return true
	}
	d := label.LCP(a, b)
	if d >= len(a) || d >= len(b) {
		// One label is a proper prefix of the other; leaf labels of a run
		// are prefix-free, so the two labels cannot coexist in one run.
		return false
	}
	ea, eb := a[d], b[d]
	if ea.Rec != eb.Rec {
		return false // malformed: a parse-tree node has children of one kind
	}
	if !ea.Rec {
		// Same composite node, expanded with one production: entries must
		// agree on k.
		if ea.X != eb.X {
			return false
		}
		return spec.BodyReach(ea.X, ea.Y, eb.Y)
	}
	// Same R node: entries must agree on (s, t).
	if ea.X != eb.X || ea.Y != eb.Y {
		return false
	}
	switch {
	case ea.Z < eb.Z:
		// u in an earlier iteration: red condition on u's child position.
		return redEntry(spec, a, d)
	case ea.Z > eb.Z:
		// u in a later (nested) iteration: blue condition on v's side.
		return blueEntry(spec, b, d)
	}
	return false // same iteration yet diverged at the R node: malformed
}

// PairwiseBytes is Pairwise on encoded labels: both encodings are walked
// in lockstep with cursors to the divergence entry, materializing nothing.
// Byte equality is only a fast path — distinct byte strings can encode
// equal labels (binary.Uvarint accepts overlong varints), so equality is
// otherwise decided by the lockstep walk itself, never assumed from byte
// comparison.
func PairwiseBytes(spec *wf.Spec, a, b label.Bytes) bool {
	if bytes.Equal(a, b) {
		return true
	}
	ca, cb := label.NewCursor(a), label.NewCursor(b)
	for {
		ea, oka := ca.Next()
		eb, okb := cb.Next()
		if !oka || !okb {
			// Both ended cleanly: equal entry sequences. One ended: a
			// proper prefix (leaf labels of a run are prefix-free, so the
			// labels cannot coexist). A malformed tail counts as ended.
			return !oka && !okb && ca.Err() == nil && cb.Err() == nil
		}
		if ea == eb {
			continue
		}
		if ea.Rec != eb.Rec {
			return false // malformed: a parse-tree node has children of one kind
		}
		if !ea.Rec {
			if ea.X != eb.X {
				return false
			}
			return spec.BodyReach(ea.X, ea.Y, eb.Y)
		}
		if ea.X != eb.X || ea.Y != eb.Y {
			return false
		}
		switch {
		case ea.Z < eb.Z:
			// u in an earlier iteration: red condition on u's child entry —
			// the next entry of a's encoding.
			e, ok := ca.Next()
			return ok && redCond(spec, e)
		case ea.Z > eb.Z:
			e, ok := cb.Next()
			return ok && blueCond(spec, e)
		}
		return false // same iteration yet diverged at the R node: malformed
	}
}

// redEntry evaluates the red condition for the label's child entry just
// below the recursion entry at index d: can that body position reach the
// cycle-successor position of its production?
func redEntry(spec *wf.Spec, l label.Label, d int) bool {
	return d+1 < len(l) && redCond(spec, l[d+1])
}

// blueEntry evaluates the blue condition: can the cycle-successor position
// of the production below the recursion entry reach the label's child
// position?
func blueEntry(spec *wf.Spec, l label.Label, d int) bool {
	return d+1 < len(l) && blueCond(spec, l[d+1])
}

func redCond(spec *wf.Spec, e label.Entry) bool {
	if e.Rec {
		return false
	}
	k, c := e.X, e.Y
	rp, cyclePos := spec.RecursiveProd(spec.Prods[k].LHS)
	if rp != k {
		// A non-final iteration always fires the recursive production; any
		// other shape is a malformed label.
		return false
	}
	return spec.BodyReach(k, c, cyclePos)
}

func blueCond(spec *wf.Spec, e label.Entry) bool {
	if e.Rec {
		return false
	}
	k, c := e.X, e.Y
	rp, cyclePos := spec.RecursiveProd(spec.Prods[k].LHS)
	if rp != k {
		return false
	}
	return spec.BodyReach(k, cyclePos, c)
}
