package reach

import (
	"provrpq/internal/label"
	"provrpq/internal/parallel"
	"provrpq/internal/wf"
)

// parallelCutoff is the l1 size below which AllPairsParallel stays serial:
// the per-shard trie build has to be worth the goroutine fan-out.
const parallelCutoff = 512

// AllPairsParallel is AllPairs sharded across a bounded worker pool of the
// given size (0 means one worker per CPU, 1 forces the serial walk). The
// first list is split into contiguous shards, each walked against a shared
// trie of l2 by its own goroutine; per-shard emits are buffered and merged
// in shard order, so for a fixed worker count the emit sequence is
// deterministic and the pair set always equals the serial one.
func AllPairsParallel(spec *wf.Spec, l1, l2 []label.Label, workers int, emit EmitFunc) {
	workers = parallel.Workers(workers)
	if workers <= 1 || len(l1) < parallelCutoff {
		AllPairs(spec, l1, l2, emit)
		return
	}
	t2 := NewTrie(l2)
	parallel.Gather(len(l1), workers, func(_, lo, hi int, out func([2]int)) {
		t1 := NewTrie(l1[lo:hi])
		AllPairsTries(spec, t1, t2, func(i, j int) {
			out([2]int{lo + i, j})
		})
	}, func(p [2]int) { emit(p[0], p[1]) })
}
