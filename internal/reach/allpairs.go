package reach

import (
	"sort"

	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// Trie is the tree representation of a list of labeled nodes (Section IV-A):
// a projection of the compressed parse tree whose leaves are the list
// entries. It is built in one pass over the label-sorted list; leaves of any
// subtree occupy a contiguous range of the sorted order, recorded as
// [Lo, Hi) index ranges into the sorted permutation.
type Trie struct {
	Labels []label.Label // sorted
	Perm   []int         // Perm[sorted position] = caller's original index
	Root   *TrieNode
}

// TrieNode is one node of the tree representation.
type TrieNode struct {
	// Entry is the label entry on the incoming edge (zero for the root).
	Entry label.Entry
	// Children in sorted entry order.
	Children []*TrieNode
	// Lo, Hi delimit the subtree's leaves in the sorted order.
	Lo, Hi int
}

// IsLeaf reports whether the node represents a full label.
func (n *TrieNode) IsLeaf() bool { return len(n.Children) == 0 }

// NewTrie builds the tree representation of the given labels (in any order;
// the constructor sorts them and records the permutation).
func NewTrie(labels []label.Label) *Trie {
	t := &Trie{Labels: make([]label.Label, len(labels)), Perm: make([]int, len(labels))}
	for i := range labels {
		t.Perm[i] = i
	}
	sort.Slice(t.Perm, func(i, j int) bool {
		return label.Compare(labels[t.Perm[i]], labels[t.Perm[j]]) < 0
	})
	for i, p := range t.Perm {
		t.Labels[i] = labels[p]
	}
	t.Root = buildTrie(t.Labels, 0, len(t.Labels), 0)
	return t
}

// buildTrie groups the sorted slice [lo,hi) by the entry at the given depth.
func buildTrie(labels []label.Label, lo, hi, depth int) *TrieNode {
	n := &TrieNode{Lo: lo, Hi: hi}
	i := lo
	// Skip exhausted labels (they are leaves at this node; sorted first).
	for i < hi && len(labels[i]) <= depth {
		i++
	}
	for i < hi {
		e := labels[i][depth]
		j := i + 1
		for j < hi && len(labels[j]) > depth && labels[j][depth] == e {
			j++
		}
		child := buildTrie(labels, i, j, depth+1)
		child.Entry = e
		n.Children = append(n.Children, child)
		i = j
	}
	return n
}

// EmitFunc receives one result pair by the callers' original indices.
type EmitFunc func(i, j int)

// AllPairs emits every pair (i, j) with l1[i] ⇝ l2[j] in any run containing
// all the labeled nodes. It runs in O(|G|³·max(|l1|,|l2|) + N) where N is
// the output size (Lemma 4.1's side effect: all-pairs reachability in
// input+output linear time for fixed G).
func AllPairs(spec *wf.Spec, l1, l2 []label.Label, emit EmitFunc) {
	AllPairsTries(spec, NewTrie(l1), NewTrie(l2), emit)
}

// AllPairsTries is AllPairs over prebuilt tries; indices refer to the
// original (pre-sort) label lists. A built Trie is read-only, so the same
// trie may back any number of concurrent walks.
func AllPairsTries(spec *wf.Spec, t1, t2 *Trie, emit EmitFunc) {
	w := &walker{spec: spec, t1: t1, t2: t2, emit: emit}
	w.walk(t1.Root, t2.Root)
}

type walker struct {
	spec  *wf.Spec
	t1    *Trie
	t2    *Trie
	emit  EmitFunc
	depth int
}

// emitRange crosses the leaf ranges of two subtrees.
func (w *walker) emitRange(a, b *TrieNode) {
	for i := a.Lo; i < a.Hi; i++ {
		for j := b.Lo; j < b.Hi; j++ {
			w.emit(w.t1.Perm[i], w.t2.Perm[j])
		}
	}
}

// walk processes two trie nodes known to represent the same parse-tree node
// (equal label prefixes).
func (w *walker) walk(a, b *TrieNode) {
	// A pair of leaves with the same full label is the same run node:
	// reachable via the empty path. (Leaves at this node sit in
	// [Lo, firstChild.Lo); only identical labels can coexist there.)
	aLeafHi, bLeafHi := a.Hi, b.Hi
	if len(a.Children) > 0 {
		aLeafHi = a.Children[0].Lo
	}
	if len(b.Children) > 0 {
		bLeafHi = b.Children[0].Lo
	}
	for i := a.Lo; i < aLeafHi; i++ {
		for j := b.Lo; j < bLeafHi; j++ {
			w.emit(w.t1.Perm[i], w.t2.Perm[j])
		}
	}
	if len(a.Children) == 0 || len(b.Children) == 0 {
		return
	}

	if !a.Children[0].Entry.Rec {
		w.walkComposite(a, b)
	} else {
		w.walkRecursive(a, b)
	}
}

// walkComposite is Case 1 of Algorithm 2: children belong to the body of a
// single production firing.
func (w *walker) walkComposite(a, b *TrieNode) {
	for _, ca := range a.Children {
		for _, cb := range b.Children {
			if ca.Entry == cb.Entry {
				w.walk(ca, cb)
				continue
			}
			if ca.Entry.Rec || cb.Entry.Rec || ca.Entry.X != cb.Entry.X {
				continue
			}
			if w.spec.BodyReach(ca.Entry.X, ca.Entry.Y, cb.Entry.Y) {
				w.emitRange(ca, cb)
			}
		}
	}
}

// walkRecursive is Case 2 of Algorithm 2: children are iterations of one R
// node, sorted by iteration number. Same iterations recurse (merge join);
// earlier iterations reach later ones through their red children; later
// iterations reach earlier ones' blue children. Every loop below either
// recurses or emits at least one pair per step, keeping the pass
// output-bound as in the paper.
func (w *walker) walkRecursive(a, b *TrieNode) {
	ac, bc := a.Children, b.Children
	// Set=: merge join on iteration number.
	for i, j := 0, 0; i < len(ac) && j < len(bc); {
		switch {
		case ac[i].Entry.Z == bc[j].Entry.Z:
			w.walk(ac[i], bc[j])
			i++
			j++
		case ac[i].Entry.Z < bc[j].Entry.Z:
			i++
		default:
			j++
		}
	}
	// Set<: red children of an earlier a-iteration reach every later
	// b-iteration entirely.
	j := 0
	for _, ca := range ac {
		var red []*TrieNode
		for _, g := range ca.Children {
			if w.isRed(g.Entry) {
				red = append(red, g)
			}
		}
		if len(red) == 0 {
			continue
		}
		for j < len(bc) && bc[j].Entry.Z <= ca.Entry.Z {
			j++
		}
		for _, cb := range bc[j:] {
			for _, g := range red {
				w.emitRange(g, cb)
			}
		}
	}
	// Set>: every later a-iteration reaches the blue children of earlier
	// b-iterations.
	i := 0
	for _, cb := range bc {
		var blue []*TrieNode
		for _, g := range cb.Children {
			if w.isBlue(g.Entry) {
				blue = append(blue, g)
			}
		}
		if len(blue) == 0 {
			continue
		}
		for i < len(ac) && ac[i].Entry.Z <= cb.Entry.Z {
			i++
		}
		for _, ca := range ac[i:] {
			for _, g := range blue {
				w.emitRange(ca, g)
			}
		}
	}
}

// isRed reports whether an iteration-child entry (k, c) can reach the cycle
// successor within production k.
func (w *walker) isRed(e label.Entry) bool {
	if e.Rec {
		return false
	}
	rp, cyclePos := w.spec.RecursiveProd(w.spec.Prods[e.X].LHS)
	return rp == e.X && w.spec.BodyReach(e.X, e.Y, cyclePos)
}

// isBlue reports whether the cycle successor can reach the iteration-child
// entry (k, c) within production k.
func (w *walker) isBlue(e label.Entry) bool {
	if e.Rec {
		return false
	}
	rp, cyclePos := w.spec.RecursiveProd(w.spec.Prods[e.X].LHS)
	return rp == e.X && w.spec.BodyReach(e.X, cyclePos, e.Y)
}
