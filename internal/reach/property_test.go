package reach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"provrpq/internal/derive"
	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// TestQuickReachabilityIsPartialOrder: on any run, label-decoded
// reachability is reflexive, transitive and antisymmetric (runs are DAGs).
// Driven by testing/quick over (seed, node-index) triples.
func TestQuickReachabilityIsPartialOrder(t *testing.T) {
	spec := wf.PaperSpec()
	runs := map[int64]*derive.Run{}
	runOf := func(seed int64) *derive.Run {
		seed %= 8
		if seed < 0 {
			seed = -seed
		}
		if r, ok := runs[seed]; ok {
			return r
		}
		r, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: 120})
		if err != nil {
			t.Fatal(err)
		}
		runs[seed] = r
		return r
	}
	prop := func(seed int64, a, b, c uint16) bool {
		r := runOf(seed)
		n := r.NumNodes()
		u := derive.NodeID(int(a) % n)
		v := derive.NodeID(int(b) % n)
		w := derive.NodeID(int(c) % n)
		lu, lv, lw := r.Label(u), r.Label(v), r.Label(w)
		// Reflexive.
		if !Pairwise(spec, lu, lu) {
			return false
		}
		// Transitive.
		if Pairwise(spec, lu, lv) && Pairwise(spec, lv, lw) && !Pairwise(spec, lu, lw) {
			return false
		}
		// Antisymmetric.
		if u != v && Pairwise(spec, lu, lv) && Pairwise(spec, lv, lu) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 3000,
		Rand:     rand.New(rand.NewSource(17)),
	}); err != nil {
		t.Error(err)
	}
}

// TestQuickAllPairsSubsetOfProduct: for random sublists, AllPairs emits
// index pairs within bounds and exactly the Pairwise-true subset.
func TestQuickAllPairsConsistent(t *testing.T) {
	spec := wf.ForkSpec()
	prop := func(seed int64, mask1, mask2 uint32) bool {
		seed %= 4
		if seed < 0 {
			seed = -seed
		}
		r, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: 40})
		if err != nil {
			return false
		}
		var l1, l2 []int
		for i := 0; i < r.NumNodes(); i++ {
			if mask1&(1<<uint(i%32)) != 0 {
				l1 = append(l1, i)
			}
			if mask2&(1<<uint(i%32)) != 0 {
				l2 = append(l2, i)
			}
		}
		la := labelsOf(r, l1)
		lb := labelsOf(r, l2)
		got := map[[2]int]bool{}
		AllPairs(spec, la, lb, func(i, j int) {
			got[[2]int{i, j}] = true
		})
		for i := range la {
			for j := range lb {
				want := Pairwise(spec, la[i], lb[j])
				if got[[2]int{i, j}] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 150,
		Rand:     rand.New(rand.NewSource(23)),
	}); err != nil {
		t.Error(err)
	}
}

func labelsOf(r *derive.Run, ids []int) []label.Label {
	out := make([]label.Label, len(ids))
	for i, id := range ids {
		out[i] = r.Label(derive.NodeID(id))
	}
	return out
}
