package reach

import (
	"fmt"
	"testing"

	"provrpq/internal/derive"
	"provrpq/internal/label"
	"provrpq/internal/wf"
)

// scriptW2W2W3 reproduces the paper's sample run on wf.PaperSpec.
func scriptW2W2W3(m wf.ModuleID, prods []int, iter int) int {
	if len(prods) == 1 {
		return prods[0]
	}
	if iter < 3 {
		return 1
	}
	return 2
}

func paperRun(t *testing.T) *derive.Run {
	t.Helper()
	r, err := derive.Derive(wf.PaperSpec(), derive.Options{Policy: scriptW2W2W3})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// bfsReach computes ground-truth reachability (reflexive) on the
// materialized run.
func bfsReach(r *derive.Run) [][]bool {
	n := r.NumNodes()
	out := make([][]bool, n)
	for s := 0; s < n; s++ {
		out[s] = make([]bool, n)
		out[s][s] = true
		stack := []derive.NodeID{derive.NodeID(s)}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range r.Out(v) {
				to := r.Edges[ei].To
				if !out[s][to] {
					out[s][to] = true
					stack = append(stack, to)
				}
			}
		}
	}
	return out
}

func TestPairwisePaperRun(t *testing.T) {
	r := paperRun(t)
	// Creation-order names: chain is c:1 a:1 a:2 e:1 e:2 d:1 d:2 b:1 b:2 b:3.
	cases := []struct {
		u, v string
		want bool
	}{
		{"c:1", "b:3", true},  // source reaches sink
		{"b:3", "c:1", false}, // no backwards paths
		{"a:1", "d:1", true},  // red: iteration 1 pos 0 reaches cycle successor
		{"d:2", "d:1", false}, // iteration 1's d is after the nested chain
		{"d:1", "d:2", true},  // blue: nested d flows out to enclosing d
		{"e:1", "d:1", true},  // base iteration reaches iteration 2's d (blue)
		{"e:1", "a:1", false},
		{"a:1", "a:2", true}, // red across iterations
		{"a:2", "a:1", false},
		{"d:2", "b:1", true}, // composite divergence in W1: A before B
		{"b:1", "d:2", false},
		{"c:1", "c:1", true}, // reflexive
		{"b:1", "b:2", true},
		{"b:2", "b:1", false},
	}
	for _, c := range cases {
		u, ok := r.NodeByName(c.u)
		if !ok {
			t.Fatalf("node %s missing", c.u)
		}
		v, ok := r.NodeByName(c.v)
		if !ok {
			t.Fatalf("node %s missing", c.v)
		}
		if got := Pairwise(r.Spec, r.Label(u), r.Label(v)); got != c.want {
			t.Errorf("Pairwise(%s, %s) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestPairwiseMatchesBFSOnPaperSpec(t *testing.T) {
	testPairwiseMatchesBFS(t, wf.PaperSpec(), 12, 300)
}

func TestPairwiseMatchesBFSOnForkSpec(t *testing.T) {
	testPairwiseMatchesBFS(t, wf.ForkSpec(), 8, 120)
}

func TestPairwiseMatchesBFSOnMultiCycle(t *testing.T) {
	spec, err := wf.NewBuilder().
		Start("S").
		Atomic("x", "y", "z").
		Chain("S", "x", "A").
		Chain("A", "x", "B", "y").
		Chain("A", "z").
		Chain("B", "y", "A", "x").
		Chain("B", "z", "z").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	testPairwiseMatchesBFS(t, spec, 10, 150)
}

func TestPairwiseMatchesBFSOnBranchySpec(t *testing.T) {
	// A non-chain body: diamond with a recursive arm, exercising composite
	// divergence where i does NOT reach j.
	spec, err := wf.NewBuilder().
		Start("S").
		Atomic("src", "l", "r", "snk", "t").
		Prod("S", []string{"src", "L", "R", "snk"}, []wf.BodyEdge{
			{From: 0, To: 1, Tag: "l"}, {From: 0, To: 2, Tag: "r"},
			{From: 1, To: 3, Tag: "s"}, {From: 2, To: 3, Tag: "s"},
		}).
		Prod("L", []string{"src", "L", "snk"}, []wf.BodyEdge{
			{From: 0, To: 1, Tag: "l"}, {From: 1, To: 2, Tag: "l"},
		}).
		Chain("L", "l").
		Prod("R", []string{"r", "t"}, []wf.BodyEdge{{From: 0, To: 1, Tag: "t"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	testPairwiseMatchesBFS(t, spec, 10, 200)
}

func testPairwiseMatchesBFS(t *testing.T, spec *wf.Spec, seeds int64, target int) {
	t.Helper()
	for seed := int64(0); seed < seeds; seed++ {
		r, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: target})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		truth := bfsReach(r)
		n := r.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := Pairwise(spec, r.Label(derive.NodeID(i)), r.Label(derive.NodeID(j)))
				if got != truth[i][j] {
					t.Fatalf("seed %d: Pairwise(%s, %s) = %v, BFS says %v\nlabels %s | %s",
						seed, r.Nodes[i].Name, r.Nodes[j].Name, got, truth[i][j],
						r.Label(derive.NodeID(i)), r.Label(derive.NodeID(j)))
				}
			}
		}
	}
}

func TestPairwiseDifferentProductionSiblings(t *testing.T) {
	// Two labels diverging at the top with different productions of the same
	// module cannot coexist in one run; Pairwise must answer false, not
	// panic.
	spec := wf.PaperSpec()
	a := label.Label{label.Prod(0, 0)}
	b := label.Label{label.Prod(2, 0)}
	if Pairwise(spec, a, b) {
		t.Error("labels from different firings should not be reachable")
	}
}

func TestPairwisePrefixLabels(t *testing.T) {
	spec := wf.PaperSpec()
	a := label.Label{label.Prod(0, 1)}
	b := label.Label{label.Prod(0, 1), label.Rec(0, 0, 1), label.Prod(1, 0)}
	if Pairwise(spec, a, b) || Pairwise(spec, b, a) {
		t.Error("prefix labels cannot coexist as run leaves")
	}
}

func TestTrieStructure(t *testing.T) {
	r := paperRun(t)
	var labels []label.Label
	for _, n := range r.Nodes {
		labels = append(labels, n.Label)
	}
	tr := NewTrie(labels)
	if tr.Root.Lo != 0 || tr.Root.Hi != len(labels) {
		t.Fatalf("root range [%d,%d), want [0,%d)", tr.Root.Lo, tr.Root.Hi, len(labels))
	}
	// Root children = the 4 positions of W1: (0,0) c, (0,1) A-subtree,
	// (0,2) B-subtree, (0,3) b.
	if len(tr.Root.Children) != 4 {
		t.Fatalf("root has %d children, want 4", len(tr.Root.Children))
	}
	// The A-subtree child is the R node: its children are the 3 iterations.
	rnode := tr.Root.Children[1]
	if got := rnode.Entry; got != label.Prod(0, 1) {
		t.Fatalf("second child entry = %v", got)
	}
	if len(rnode.Children) != 3 {
		t.Fatalf("R node has %d children, want 3 iterations", len(rnode.Children))
	}
	for i, it := range rnode.Children {
		if !it.Entry.Rec || it.Entry.Z != i+1 {
			t.Errorf("iteration %d entry = %v", i, it.Entry)
		}
	}
	// Leaf ranges are contiguous and ordered.
	last := 0
	for _, c := range tr.Root.Children {
		if c.Lo != last {
			t.Errorf("child range starts at %d, want %d", c.Lo, last)
		}
		last = c.Hi
	}
}

func TestAllPairsMatchesPairwise(t *testing.T) {
	specs := map[string]*wf.Spec{
		"paper": wf.PaperSpec(),
		"fork":  wf.ForkSpec(),
	}
	for name, spec := range specs {
		for seed := int64(0); seed < 8; seed++ {
			r, err := derive.Derive(spec, derive.Options{Seed: seed, TargetEdges: 150})
			if err != nil {
				t.Fatal(err)
			}
			// Use two overlapping sublists to exercise asymmetric tries.
			var l1, l2 []label.Label
			var ids1, ids2 []derive.NodeID
			for i, n := range r.Nodes {
				if i%2 == 0 {
					l1 = append(l1, n.Label)
					ids1 = append(ids1, derive.NodeID(i))
				}
				if i%3 == 0 || i%5 == 1 {
					l2 = append(l2, n.Label)
					ids2 = append(ids2, derive.NodeID(i))
				}
			}
			got := map[string]bool{}
			AllPairs(spec, l1, l2, func(i, j int) {
				got[fmt.Sprintf("%d-%d", ids1[i], ids2[j])] = true
			})
			want := map[string]bool{}
			for i, a := range l1 {
				for j, b := range l2 {
					if Pairwise(spec, a, b) {
						want[fmt.Sprintf("%d-%d", ids1[i], ids2[j])] = true
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s seed %d: AllPairs %d pairs, nested loop %d", name, seed, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("%s seed %d: missing pair %s", name, seed, k)
				}
			}
		}
	}
}

func TestAllPairsEmptyLists(t *testing.T) {
	spec := wf.PaperSpec()
	called := false
	AllPairs(spec, nil, nil, func(i, j int) { called = true })
	if called {
		t.Error("no pairs expected for empty lists")
	}
	AllPairs(spec, []label.Label{{label.Prod(0, 0)}}, nil, func(i, j int) { called = true })
	if called {
		t.Error("no pairs expected for one empty list")
	}
}

func TestAllPairsIdenticalLists(t *testing.T) {
	r := paperRun(t)
	var labels []label.Label
	for _, n := range r.Nodes {
		labels = append(labels, n.Label)
	}
	count := 0
	AllPairs(r.Spec, labels, labels, func(i, j int) { count++ })
	truth := bfsReach(r)
	want := 0
	for i := range truth {
		for j := range truth[i] {
			if truth[i][j] {
				want++
			}
		}
	}
	if count != want {
		t.Errorf("AllPairs over all nodes = %d pairs, BFS says %d", count, want)
	}
}

func TestPaperExampleAllPairs(t *testing.T) {
	// Example 3.1's reachability structure, adjusted for creation-order
	// names: paper l1={d:1,d:2,e:2}, l2={b:1,b:2}; paper's d:1/d:2 are our
	// d:2/d:1 and paper's b:1 (the W1 b) is our b:3, paper's b:2 is our b:1.
	r := paperRun(t)
	names1 := []string{"d:2", "d:1", "e:2"}
	names2 := []string{"b:3", "b:1"}
	var l1, l2 []label.Label
	for _, n := range names1 {
		id, _ := r.NodeByName(n)
		l1 = append(l1, r.Label(id))
	}
	for _, n := range names2 {
		id, _ := r.NodeByName(n)
		l2 = append(l2, r.Label(id))
	}
	got := map[string]bool{}
	AllPairs(r.Spec, l1, l2, func(i, j int) {
		got[names1[i]+">"+names2[j]] = true
	})
	// All three reach both b's in the chain run.
	for _, u := range names1 {
		for _, v := range names2 {
			if !got[u+">"+v] {
				t.Errorf("missing %s -> %s", u, v)
			}
		}
	}
}
