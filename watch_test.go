package provrpq

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// watchPairSet builds a set view of a pair list for union/equality checks.
func watchPairSet(pairs []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return m
}

// TestStandingQueryDeltaEqualsFullEvaluation is the differential property
// behind /v1/watch: for randomized base graphs and randomized growth
// batches, a snapshot taken at registration plus the DeltaPairs of every
// subsequent append event must equal a full re-evaluation of the final run
// — for every safe query, with no pair missing, duplicated across deltas,
// or retracted.
func TestStandingQueryDeltaEqualsFullEvaluation(t *testing.T) {
	spec := introSpec(t)
	safeTested := 0
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		full, err := spec.Derive(DeriveOptions{Seed: seed, TargetEdges: 80 + rng.Intn(160)})
		if err != nil {
			t.Fatal(err)
		}
		fullJSON, err := EncodeRun(full)
		if err != nil {
			t.Fatal(err)
		}
		n := full.NumNodes()
		cuts := []int{1 + rng.Intn(n/2+1)}
		for cuts[len(cuts)-1] < n {
			next := cuts[len(cuts)-1] + 1 + rng.Intn(n/4+1)
			if next > n {
				next = n
			}
			cuts = append(cuts, next)
		}
		baseJSON, batchJSONs := splitEncodedRun(t, fullJSON, cuts)

		cat := NewCatalog(CatalogOptions{})
		if err := cat.RegisterSpec("wf", spec); err != nil {
			t.Fatal(err)
		}
		base, err := DecodeRun(spec, baseJSON)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddRun("r1", "wf", base); err != nil {
			t.Fatal(err)
		}

		var events []AppendEvent
		cancel := cat.SubscribeAppends(func(ev AppendEvent) { events = append(events, ev) })
		snapRun, snapVer, ok := cat.RunAt("r1")
		if !ok || snapVer != 0 {
			t.Fatalf("RunAt = (%v, %d, %v)", snapRun, snapVer, ok)
		}

		for bi, bj := range batchJSONs {
			b, err := DecodeBatch(spec, bj)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, bi, err)
			}
			if _, err := cat.AppendEdges("r1", b); err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, bi, err)
			}
		}
		cancel()
		if len(events) != len(batchJSONs) {
			t.Fatalf("seed %d: %d events for %d batches", seed, len(events), len(batchJSONs))
		}
		for i, ev := range events {
			if ev.RunName != "r1" || ev.Version != i+1 {
				t.Fatalf("seed %d event %d: name %q version %d", seed, i, ev.RunName, ev.Version)
			}
			if i > 0 && int(ev.FirstNewNode) != events[i-1].Run.NumNodes() {
				t.Fatalf("seed %d event %d: FirstNewNode %d, prev run had %d nodes",
					seed, i, ev.FirstNewNode, events[i-1].Run.NumNodes())
			}
		}

		snapEngine := NewEngine(snapRun)
		finalEngine, err := cat.Engine("r1")
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range appendQueries {
			q := MustParseQuery(qs)
			safe, err := cat.IsSafeQuery(spec, q)
			if err != nil {
				t.Fatal(err)
			}
			if !safe {
				for _, ev := range events {
					if _, err := cat.DeltaPairs(ev, q); !errors.Is(err, ErrUnsafeWatch) {
						t.Fatalf("DeltaPairs(unsafe %s) = %v, want ErrUnsafeWatch", qs, err)
					}
				}
				continue
			}
			safeTested++
			snap, err := snapEngine.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			union := watchPairSet(snap)
			for i, ev := range events {
				delta, err := cat.DeltaPairs(ev, q)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range delta {
					if union[p] {
						t.Fatalf("seed %d query %s: pair %v duplicated by delta %d", seed, qs, p, i)
					}
					union[p] = true
				}
			}
			want, err := finalEngine.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			wantSet := watchPairSet(want)
			if len(union) != len(wantSet) {
				t.Fatalf("seed %d query %s: snapshot+deltas has %d pairs, full evaluation %d",
					seed, qs, len(union), len(wantSet))
			}
			for p := range wantSet {
				if !union[p] {
					t.Fatalf("seed %d query %s: pair %v missing from snapshot+deltas", seed, qs, p)
				}
			}
		}
	}
	if safeTested == 0 {
		t.Fatal("no safe query exercised; fixture queries all unsafe")
	}
}

// TestDeltaPairsEdgesOnlyBatchIsEmpty: a batch creating no nodes cannot
// change any safe-query answer (labels are assigned at node creation and
// never recomputed), so its delta must be empty and its pairs sorted.
func TestDeltaPairsEdgesOnlyBatchIsEmpty(t *testing.T) {
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 3, TargetEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(CatalogOptions{})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r1", "wf", full); err != nil {
		t.Fatal(err)
	}
	var got []AppendEvent
	cancel := cat.SubscribeAppends(func(ev AppendEvent) { got = append(got, ev) })
	defer cancel()
	b := appendEdgesBatch(t, spec, full, 8)
	if _, err := cat.AppendEdges("r1", b); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].NewNodes != 0 || got[0].NewEdges != 8 {
		t.Fatalf("events = %+v, want one edges-only event", got)
	}
	for _, qs := range appendQueries {
		q := MustParseQuery(qs)
		if safe, _ := cat.IsSafeQuery(spec, q); !safe {
			continue
		}
		delta, err := cat.DeltaPairs(got[0], q)
		if err != nil {
			t.Fatal(err)
		}
		if len(delta) != 0 {
			t.Fatalf("query %s: edges-only batch produced %d delta pairs", qs, len(delta))
		}
	}
}

// TestDeltaPairsSorted: DeltaPairs promises (From, To)-sorted output — the
// SSE layer streams it verbatim.
func TestDeltaPairsSorted(t *testing.T) {
	spec := introSpec(t)
	full, err := spec.Derive(DeriveOptions{Seed: 7, TargetEdges: 300})
	if err != nil {
		t.Fatal(err)
	}
	fullJSON, err := EncodeRun(full)
	if err != nil {
		t.Fatal(err)
	}
	n := full.NumNodes()
	baseJSON, batchJSONs := splitEncodedRun(t, fullJSON, []int{n / 2, n})
	cat := NewCatalog(CatalogOptions{})
	if err := cat.RegisterSpec("wf", spec); err != nil {
		t.Fatal(err)
	}
	base, err := DecodeRun(spec, baseJSON)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("r1", "wf", base); err != nil {
		t.Fatal(err)
	}
	var ev AppendEvent
	cancel := cat.SubscribeAppends(func(e AppendEvent) { ev = e })
	defer cancel()
	b, err := DecodeBatch(spec, batchJSONs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AppendEdges("r1", b); err != nil {
		t.Fatal(err)
	}
	checked := false
	for _, qs := range appendQueries {
		q := MustParseQuery(qs)
		if safe, _ := cat.IsSafeQuery(spec, q); !safe {
			continue
		}
		delta, err := cat.DeltaPairs(ev, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(delta, func(i, j int) bool {
			if delta[i].From != delta[j].From {
				return delta[i].From < delta[j].From
			}
			return delta[i].To < delta[j].To
		}) {
			t.Fatalf("query %s: delta not sorted: %v", qs, delta)
		}
		if len(delta) > 0 {
			checked = true
		}
	}
	if !checked {
		t.Skip("no safe query produced a non-empty delta for this fixture")
	}
}
