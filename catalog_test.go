package provrpq

import (
	"fmt"
	"sync"
	"testing"
)

// catalogFixture registers one spec and three runs of it.
func catalogFixture(t *testing.T) (*Catalog, []string) {
	t.Helper()
	cat := NewCatalog(CatalogOptions{})
	if err := cat.RegisterSpec("intro", introSpec(t)); err != nil {
		t.Fatal(err)
	}
	var runs []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("run-%d", i)
		if _, err := cat.DeriveRun(name, "intro", DeriveOptions{Seed: int64(i + 1), TargetEdges: 100 + 50*i}); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, name)
	}
	return cat, runs
}

func TestCatalogRegistration(t *testing.T) {
	cat, runs := catalogFixture(t)
	if got := cat.SpecNames(); len(got) != 1 || got[0] != "intro" {
		t.Fatalf("SpecNames = %v", got)
	}
	if got := cat.RunNames(); len(got) != 3 {
		t.Fatalf("RunNames = %v", got)
	}
	if got := cat.RunsOfSpec("intro"); len(got) != 3 {
		t.Fatalf("RunsOfSpec = %v", got)
	}
	if sp, ok := cat.RunSpecName(runs[0]); !ok || sp != "intro" {
		t.Fatalf("RunSpecName = %q, %v", sp, ok)
	}
	if err := cat.RegisterSpec("intro", introSpec(t)); err == nil {
		t.Error("duplicate spec name should fail")
	}
	if err := cat.RegisterSpec("nil", nil); err == nil {
		t.Error("nil spec should fail")
	}
	if _, err := cat.DeriveRun("run-0", "intro", DeriveOptions{Seed: 9}); err == nil {
		t.Error("duplicate run name should fail")
	}
	if _, err := cat.DeriveRun("x", "ghost", DeriveOptions{}); err == nil {
		t.Error("deriving from unknown spec should fail")
	}
	if _, err := cat.Engine("ghost"); err == nil {
		t.Error("unknown run engine should fail")
	}

	// AddRun rejects a run of a *different* spec object: identity matters
	// for label decoding and plan sharing.
	other := introSpec(t)
	foreign, err := other.Derive(DeriveOptions{Seed: 1, TargetEdges: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("foreign", "intro", foreign); err == nil {
		t.Error("run of a different spec instance should be rejected")
	}

	// A run decoded against the registered spec is accepted.
	spec, _ := cat.Spec("intro")
	native, err := spec.Derive(DeriveOptions{Seed: 42, TargetEdges: 60})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeRun(native)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeRun(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRun("uploaded", "intro", decoded); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Engine("uploaded"); err != nil {
		t.Fatal(err)
	}
}

// TestCatalogEngineIdentity verifies one lazily-built engine per run.
func TestCatalogEngineIdentity(t *testing.T) {
	cat, runs := catalogFixture(t)
	e1, err := cat.Engine(runs[0])
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cat.Engine(runs[0])
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("repeated Engine calls should return the same engine")
	}
	run, ok := cat.Run(runs[0])
	if !ok || e1.Run() != run {
		t.Error("engine is not over the registered run")
	}
}

// TestEvaluateBatch checks the batch fan-out against direct Engine
// evaluation, per-item errors, and plan-cache sharing across runs.
func TestEvaluateBatch(t *testing.T) {
	cat, runs := catalogFixture(t)
	queries := []*Query{
		MustParseQuery("_*.s._*.publish"),
		MustParseQuery("ingest._*"),
		MustParseQuery("_*.a1._*"), // unsafe: exercises the decomposition path
	}
	results := cat.EvaluateBatch(runs, queries)
	if len(results) != len(runs)*len(queries) {
		t.Fatalf("got %d results, want %d", len(results), len(runs)*len(queries))
	}
	for i, res := range results {
		wantRun, wantQ := runs[i/len(queries)], queries[i%len(queries)]
		if res.Run != wantRun || res.Query != wantQ.String() {
			t.Fatalf("result %d is (%s, %s), want (%s, %s)", i, res.Run, res.Query, wantRun, wantQ)
		}
		if res.Err != nil {
			t.Fatalf("result %d failed: %v", i, res.Err)
		}
		eng, err := cat.Engine(res.Run)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := eng.Evaluate(wantQ)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(res.Pairs) {
			t.Fatalf("result %d: batch %d pairs, direct %d", i, len(res.Pairs), len(direct))
		}
		for j := range direct {
			if direct[j] != res.Pairs[j] {
				t.Fatalf("result %d pair %d: batch %v, direct %v", i, j, res.Pairs[j], direct[j])
			}
		}
	}

	// Empty run list = all runs; unknown runs fail per-item, not globally.
	all := cat.EvaluateBatch(nil, queries[:1])
	if len(all) != 3 {
		t.Fatalf("nil runs should select all 3 runs, got %d results", len(all))
	}
	mixed := cat.EvaluateBatch([]string{runs[0], "ghost"}, queries[:1])
	if mixed[0].Err != nil {
		t.Errorf("known run errored: %v", mixed[0].Err)
	}
	if mixed[1].Err == nil {
		t.Error("unknown run should carry a per-item error")
	}

	// Three runs of one spec share plans: each query compiles once
	// (a miss) and hits on every other run.
	stats := cat.Stats()
	if stats.Specs != 1 || stats.Runs != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PlanCache.Hits <= stats.PlanCache.Misses {
		t.Errorf("plan cache should hit more than it misses across runs of one spec: %+v", stats.PlanCache)
	}
	if stats.Workers < 1 {
		t.Errorf("resolved workers = %d", stats.Workers)
	}
}

// TestCatalogConcurrent hammers a catalog from many goroutines mixing
// registration, engine resolution and batch evaluation (run with -race).
func TestCatalogConcurrent(t *testing.T) {
	cat, runs := catalogFixture(t)
	queries := []*Query{MustParseQuery("_*.s._*"), MustParseQuery("ingest._*.publish")}
	want := map[string]int{}
	for _, rn := range runs {
		eng, err := cat.Engine(rn)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			pairs, err := eng.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			want[rn+"|"+q.String()] = len(pairs)
		}
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				for _, res := range cat.EvaluateBatch(runs, queries) {
					if res.Err != nil {
						t.Errorf("goroutine %d: %v", g, res.Err)
						return
					}
					if n := want[res.Run+"|"+res.Query]; n != len(res.Pairs) {
						t.Errorf("goroutine %d: (%s, %s) = %d pairs, want %d", g, res.Run, res.Query, len(res.Pairs), n)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
