package provrpq

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/core"
	"provrpq/internal/derive"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/metrics"
	"provrpq/internal/parallel"
	"provrpq/internal/plan"
	"provrpq/internal/plancache"
	"provrpq/internal/reach"
)

var (
	mEvalSeconds = metrics.Default().HistogramVec("provrpq_eval_seconds",
		"All-pairs evaluation latency, by the strategy that ran.",
		metrics.LatencyBuckets, "strategy")
	mEvalUnits = metrics.Default().HistogramVec("provrpq_eval_decode_units",
		"Cost model decode-unit estimate per all-pairs evaluation, by the strategy that ran.",
		metrics.WorkBuckets, "strategy")
)

// observeEval feeds one completed all-pairs evaluation back into the
// measured cost model and the exported histograms: the strategy that
// ran, the decode units the model estimated for it, and the elapsed
// wall time. This is the calibration loop behind plan.NewWithTimings —
// after enough observations the planner weighs estimates by what a unit
// of each strategy actually costs here, not by the static constant.
func observeEval(s plan.Strategy, units float64, start time.Time) {
	d := time.Since(start)
	plan.SharedTimings().Observe(s, units, d)
	name := s.String()
	mEvalSeconds.With(name).Observe(d.Seconds())
	if units > 0 {
		mEvalUnits.With(name).Observe(units)
	}
}

// observeEvalLatency records latency for evaluation paths outside the
// measured cost model (the G1 baseline, unsafe-query decomposition).
func observeEvalLatency(name string, start time.Time) {
	mEvalSeconds.With(name).Observe(time.Since(start).Seconds())
}

// Query is a parsed regular path query.
type Query struct {
	node *automata.Node
	str  string
}

// ParseQuery parses the package's query syntax (see the package comment).
func ParseQuery(s string) (*Query, error) {
	n, err := automata.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Query{node: n, str: s}, nil
}

// MustParseQuery is ParseQuery panicking on error, for fixtures.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the canonical rendering of the query.
func (q *Query) String() string { return q.node.String() }

// Pair is one result of an all-pairs query.
type Pair struct {
	From, To NodeID
}

// Strategy selects the all-pairs evaluation plan.
type Strategy int

const (
	// Auto consults the selectivity planner for safe queries — choosing
	// among RPL, OptRPL and the index-seeded strategy from per-run tag
	// statistics — and uses safe-subtree decomposition (with the cost
	// model) for unsafe ones.
	Auto Strategy = iota
	// StrategyRPL forces the nested-loop pairwise scan (paper Option S1).
	StrategyRPL
	// StrategyOptRPL forces the reachability-filtered scan (Option S2).
	StrategyOptRPL
	// StrategyG1 forces the relational baseline (Option G1).
	StrategyG1
	// StrategySeeded forces the index-seeded strategy: anchor on the rarest
	// tag every match must traverse, restrict both endpoint lists to the
	// nodes that can reach / be reached from its occurrences, and verify
	// only the surviving pairs. Unlike RPL/OptRPL it also accepts unsafe
	// queries (candidates are then verified by expanding the minimal DFA,
	// forward or reversed). Queries that require no tag fall back to
	// OptRPL (safe) or a full expansion (unsafe).
	StrategySeeded
)

// String returns the strategy's wire name, as reported by Explain and the
// HTTP API.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case StrategyRPL:
		return "rpl"
	case StrategyOptRPL:
		return "optrpl"
	case StrategyG1:
		return "g1"
	case StrategySeeded:
		return "seeded"
	}
	return "unknown"
}

// PlanCache is a shared cache of compiled query plans (minimal DFA, λ
// matrices, safety verdict, decode artifacts). A compiled plan depends only
// on (specification, query) — never on a run — so engines over different
// runs of one specification share plans through a common cache. A PlanCache
// is safe for concurrent use; concurrent compiles of the same query are
// deduplicated and the cache is LRU-bounded.
type PlanCache struct {
	c *plancache.Cache
}

// NewPlanCache returns a plan cache bounded to capacity compiled plans
// (<= 0 selects the default bound).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{c: plancache.New(capacity)}
}

// Len returns the number of resident compiled plans.
func (p *PlanCache) Len() int { return p.c.Len() }

// CacheStats is a point-in-time snapshot of a plan cache's traffic. Hits,
// Misses and Evictions are cumulative; Plans is the resident plan count.
// A healthy multi-run workload shows Hits well above Misses: every run of
// a specification after the first answers from already-compiled plans.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Plans                   int
}

// Stats snapshots the cache counters.
func (p *PlanCache) Stats() CacheStats {
	m := p.c.Stats()
	return CacheStats{Hits: m.Hits, Misses: m.Misses, Evictions: m.Evictions, Plans: m.Len}
}

// sharedPlans is the process-wide default plan cache: every engine not
// given an explicit cache compiles into (and out of) this one.
var sharedPlans = plancache.New(0)

// defaultPlanCache wraps sharedPlans for public observation.
var defaultPlanCache = &PlanCache{c: sharedPlans}

// DefaultPlanCache returns the process-wide shared plan cache used by
// every engine not configured with an explicit cache, for stats
// inspection (e.g. rpqcli -stats) or for passing to a Catalog.
func DefaultPlanCache() *PlanCache { return defaultPlanCache }

// crossParallelCutoff is the pair-count floor below which the unsafe-query
// cross-product stays serial, matching the cutoffs of the safe scans.
const crossParallelCutoff = 2048

// EngineOptions configure an Engine beyond its run.
type EngineOptions struct {
	// Workers bounds the worker pool of parallel all-pairs evaluation
	// (AllPairs, AllPairsReachable, Evaluate): 0 means one worker per CPU,
	// 1 forces serial scans.
	Workers int
	// PlanCache overrides the process-wide shared compiled-plan cache.
	PlanCache *PlanCache
}

// Engine evaluates queries over one run. Compiled query environments
// (minimal DFA, λ matrices, safety verdict, decode artifacts) come from a
// plan cache shared across engines — by default one process-wide cache —
// and the run's inverted edge index and general evaluator are built lazily
// exactly once.
//
// An Engine is safe for concurrent use: any number of goroutines may call
// any mix of its methods. All-pairs scans additionally fan the per-pair
// work out across a bounded worker pool (EngineOptions.Workers); per-shard
// results are merged back in shard order, so a parallel scan always returns
// the same pair set as a serial one, in an order that is deterministic for
// a given worker count (the RPL nested-loop scan preserves the serial order
// exactly).
type Engine struct {
	run     *Run
	plans   *plancache.Cache
	workers int

	// lblOnce/lbls defer the materialized per-node label slice to the
	// first all-pairs scan: the pairwise entry points answer straight from
	// the run's label column (LabelBytes), so an engine over a
	// columnar-opened run serves point queries without ever decoding every
	// label.
	lblOnce sync.Once
	lbls    []label.Label

	// envMemo fronts the shared plan cache with a per-engine, lock-free
	// hit path (the pairwise decode is nanosecond-scale; a contended
	// process-wide mutex per call would serialize it). It also pins every
	// plan this engine has resolved, so an LRU eviction in the shared
	// cache never invalidates an engine's working set — in particular a
	// RelaxSafety upgrade survives for the engine that performed it.
	envMemo sync.Map // query string -> *core.Env

	ixOnce sync.Once
	ix     *index.Index

	// plOnce/pl hold the selectivity planner, built lazily over the run's
	// index. Because an engine is bound to one run version (the catalog
	// swaps engines on growth), the planner's sampled statistics are
	// effectively cached per run generation, next to the compiled plans the
	// engine resolves from the shared cache.
	plOnce sync.Once
	pl     *plan.Planner

	genOnce sync.Once
	gen     *core.General

	//provrpq:lockrank g2Mu 40
	g2mu sync.Mutex
	g2s  map[string]*g2entry
}

// g2entry lazily builds one G2 evaluator per query; the sync.Once makes
// concurrent first uses build it exactly once.
type g2entry struct {
	once sync.Once
	g2   *baseline.G2
}

// NewEngine prepares an engine over a run with default options (shared
// process-wide plan cache, one worker per CPU).
func NewEngine(run *Run) *Engine {
	return NewEngineOpts(run, EngineOptions{})
}

// NewEngineOpts prepares an engine with explicit options.
func NewEngineOpts(run *Run, opts EngineOptions) *Engine {
	plans := sharedPlans
	if opts.PlanCache != nil {
		plans = opts.PlanCache.c
	}
	return &Engine{
		run:     run,
		plans:   plans,
		workers: parallel.Workers(opts.Workers),
		g2s:     map[string]*g2entry{},
	}
}

// labels returns the materialized per-node label slice, built on first use.
func (e *Engine) labels() []label.Label {
	e.lblOnce.Do(func() { e.lbls = e.run.r.MaterializeLabels() })
	return e.lbls
}

// Run returns the engine's run.
func (e *Engine) Run() *Run { return e.run }

func (e *Engine) env(q *Query) (*core.Env, error) {
	key := q.node.String()
	if v, ok := e.envMemo.Load(key); ok {
		return v.(*core.Env), nil
	}
	env, err := e.plans.Get(e.run.r.Spec, q.node)
	if err != nil {
		return nil, err
	}
	v, _ := e.envMemo.LoadOrStore(key, env)
	return v.(*core.Env), nil
}

func (e *Engine) index() *index.Index {
	e.ixOnce.Do(func() { e.ix = index.Build(e.run.r) })
	return e.ix
}

func (e *Engine) planner() *plan.Planner {
	e.plOnce.Do(func() { e.pl = plan.NewWithTimings(e.index(), plan.SharedTimings()) })
	return e.pl
}

func (e *Engine) general() *core.General {
	e.genOnce.Do(func() {
		e.gen = core.NewGeneralOpts(e.run.r, e.index(), core.CostBased, core.GeneralOptions{
			Envs:    e.plans,
			Workers: e.workers,
		})
	})
	return e.gen
}

// g2For returns the engine's cached G2 evaluator for the query, building it
// on first use (it depends on the run's index, so it cannot live in the
// spec-keyed plan cache).
func (e *Engine) g2For(q *Query) *baseline.G2 {
	key := q.node.String()
	e.g2mu.Lock()
	en, ok := e.g2s[key]
	if !ok {
		en = &g2entry{}
		e.g2s[key] = en
	}
	e.g2mu.Unlock()
	en.once.Do(func() { en.g2 = baseline.NewG2(e.index(), q.node) })
	return en.g2
}

// IsSafe reports whether the query is safe for the run's specification
// (Definition 13; checked on the minimal DFA per Lemma 3.2).
func (e *Engine) IsSafe(q *Query) (bool, error) {
	env, err := e.env(q)
	if err != nil {
		return false, err
	}
	return env.Safe(), nil
}

// IsSafeRelaxed additionally tries *context-restricted safety*, an
// extension beyond the paper: determinism is required only for DFA states
// that can actually arrive at a module's input on some run path. Strictly
// more queries qualify (e.g. a query whose ambiguity involves a state no
// path upstream of the module can produce). When relaxation succeeds, the
// compiled environment becomes safe, so subsequent Pairwise and AllPairs
// calls on the same query use the constant-time label decode — permanently
// for this engine (its plan memo pins the upgraded plan), and for other
// engines sharing the plan cache while the plan stays resident there. The
// upgrade is published atomically; concurrent readers see either the
// strict or the fully relaxed verdict.
func (e *Engine) IsSafeRelaxed(q *Query) (bool, error) {
	env, err := e.env(q)
	if err != nil {
		return false, err
	}
	return env.RelaxSafety(), nil
}

// Pairwise answers u —R→ v. Safe queries are answered in constant time from
// the two node labels (Theorem 1); unsafe queries fall back to a rare-label
// product search over the run (Option G2), whose compiled evaluator is
// cached per query alongside the plan.
func (e *Engine) Pairwise(q *Query, u, v NodeID) (bool, error) {
	if err := e.checkNode(u); err != nil {
		return false, err
	}
	if err := e.checkNode(v); err != nil {
		return false, err
	}
	env, err := e.env(q)
	if err != nil {
		return false, err
	}
	if env.Safe() {
		// Decode straight from the run's label column — no materialized
		// []Entry labels on the point-query path.
		return env.PairwiseBytes(e.run.r.LabelBytes(derive.NodeID(u)), e.run.r.LabelBytes(derive.NodeID(v)))
	}
	g2 := e.g2For(q)
	return g2.Pairwise(derive.NodeID(u), derive.NodeID(v)), nil
}

// Reachable answers plain reachability u ⇝ v in constant time from labels.
func (e *Engine) Reachable(u, v NodeID) (bool, error) {
	if err := e.checkNode(u); err != nil {
		return false, err
	}
	if err := e.checkNode(v); err != nil {
		return false, err
	}
	return reach.PairwiseBytes(e.run.r.Spec, e.run.r.LabelBytes(derive.NodeID(u)), e.run.r.LabelBytes(derive.NodeID(v))), nil
}

// AllPairsReachable returns all reachable pairs of l1 × l2 in time linear
// in the lists and the output (Lemma 4.1's side effect), sharded across the
// engine's worker pool.
func (e *Engine) AllPairsReachable(l1, l2 []NodeID) ([]Pair, error) {
	la, err := e.labelsOf(l1)
	if err != nil {
		return nil, err
	}
	lb, err := e.labelsOf(l2)
	if err != nil {
		return nil, err
	}
	var out []Pair
	reach.AllPairsParallel(e.run.r.Spec, la, lb, e.workers, func(i, j int) {
		out = append(out, Pair{From: l1[i], To: l2[j]})
	})
	return out, nil
}

// AllPairs returns all pairs (u,v) ∈ l1 × l2 with u —R→ v.
func (e *Engine) AllPairs(q *Query, l1, l2 []NodeID, strategy Strategy) ([]Pair, error) {
	if err := e.checkNodes(l1); err != nil {
		return nil, err
	}
	if err := e.checkNodes(l2); err != nil {
		return nil, err
	}
	env, err := e.env(q)
	if err != nil {
		return nil, err
	}
	var out []Pair
	emit := func(i, j int) {
		out = append(out, Pair{From: l1[i], To: l2[j]})
	}
	// Label slices are built only by the branches that scan them — the
	// seeded and relational paths work from node ids.
	safeScan := func(st core.AllPairsStrategy) error {
		return env.AllPairsSafeParallel(e.labelsUnchecked(l1), e.labelsUnchecked(l2), st, e.workers, emit)
	}
	start := time.Now()
	switch strategy {
	case StrategyRPL, StrategyOptRPL:
		if !env.Safe() {
			return nil, fmt.Errorf("provrpq: query %s is unsafe; RPL/OptRPL require a safe query", q)
		}
		st, ps := core.OptRPL, plan.OptRPL
		if strategy == StrategyRPL {
			st, ps = core.RPL, plan.RPL
		}
		dec := e.planner().Plan(env, len(l1), len(l2))
		if err := safeScan(st); err != nil {
			return nil, err
		}
		observeEval(ps, dec.UnitCost(ps), start)
		return out, nil
	case StrategyG1:
		g1 := baseline.NewG1(e.index())
		g1.AllPairs(q.node, toDerive(l1), toDerive(l2), emit)
		observeEvalLatency("g1", start)
		return out, nil
	case StrategySeeded:
		dec := e.planner().Plan(env, len(l1), len(l2))
		if err := plan.AllPairsSeeded(env, e.index(), dec, toDerive(l1), toDerive(l2), emit); err != nil {
			return nil, err
		}
		observeEval(plan.Seeded, dec.CostSeeded, start)
		return out, nil
	default: // Auto
		if env.Safe() {
			dec := e.planner().Plan(env, len(l1), len(l2))
			var err error
			switch dec.Strategy {
			case plan.RPL:
				err = safeScan(core.RPL)
			case plan.Seeded:
				err = plan.AllPairsSeeded(env, e.index(), dec, toDerive(l1), toDerive(l2), emit)
			default:
				err = safeScan(core.OptRPL)
			}
			if err != nil {
				return nil, err
			}
			observeEval(dec.Strategy, dec.UnitCost(dec.Strategy), start)
			return out, nil
		}
		rel, _, err := e.general().Eval(q.node)
		if err != nil {
			return nil, err
		}
		// Cross the lists against the materialized relation in parallel:
		// Rel is read-only here, and contiguous shards of l1 merged in
		// order reproduce the serial nested-loop output order. Small
		// products stay serial — goroutine fan-out costs more than the
		// map lookups it would split.
		du, dv := toDerive(l1), toDerive(l2)
		if len(l1)*len(l2) < crossParallelCutoff {
			for i, u := range l1 {
				for j, v := range l2 {
					if rel.Has(du[i], dv[j]) {
						out = append(out, Pair{From: u, To: v})
					}
				}
			}
			observeEvalLatency("decompose", start)
			return out, nil
		}
		parallel.Gather(len(l1), e.workers, func(_, lo, hi int, emit func(Pair)) {
			for i := lo; i < hi; i++ {
				for j := range l2 {
					if rel.Has(du[i], dv[j]) {
						emit(Pair{From: l1[i], To: l2[j]})
					}
				}
			}
		}, func(p Pair) { out = append(out, p) })
		observeEvalLatency("decompose", start)
		return out, nil
	}
}

// PlanReport describes how the engine would evaluate a query: the safety
// verdict, the strategy Auto would pick for a full evaluation (all nodes ×
// all nodes), the seed the index-seeded strategy would anchor on, and the
// planner's cost estimates (in label-decode units). For unsafe queries
// Decomposed is set and SafeSubtrees/RelationalNodes describe the
// safe-subtree decomposition instead; the cost fields are then zero (the
// decode-count model applies only to whole-query safe scans).
type PlanReport struct {
	// Query is the canonical query rendering.
	Query string
	// Safe is the (possibly relaxed) safety verdict.
	Safe bool
	// Strategy is what Auto uses: StrategyRPL, StrategyOptRPL or
	// StrategySeeded for safe queries; Auto (decomposition) when unsafe.
	Strategy Strategy
	// Decomposed reports the unsafe path: maximal safe subtrees evaluated
	// with labels, the remainder relationally.
	Decomposed bool
	// SeedTag is the rarest tag every match must traverse ("" when the
	// query requires none); SeedCount its occurrence count in the run.
	SeedTag   string
	SeedCount int
	// Reverse reports that the seed's target side looks more selective, so
	// the seeded scan resolves (and an unsafe expansion starts from) the
	// target candidates first, running the reversed query.
	Reverse bool
	// CostRPL, CostOptRPL and CostSeeded are the planner's estimates for a
	// full scan; CostSeeded is meaningful only when SeedTag != "".
	CostRPL, CostOptRPL, CostSeeded float64
	// UnitNanosRPL, UnitNanosOptRPL and UnitNanosSeeded are the
	// per-decode-unit costs (nanoseconds) the comparison weighted each
	// estimate by: the static constant until a strategy's measured
	// timings are warm, then its live EWMA of observed evaluations.
	UnitNanosRPL, UnitNanosOptRPL, UnitNanosSeeded float64
	// CostSource reports where the chosen strategy's per-unit cost came
	// from: "measured" (warm EWMA) or "static" (constant). Empty for
	// decomposed plans, where the decode-count model does not apply.
	CostSource string
	// SafeSubtrees and RelationalNodes describe the decomposition of an
	// unsafe query (empty / zero for safe ones: the whole query is one
	// safe scan).
	SafeSubtrees    []string
	RelationalNodes int
}

// Explain reports the evaluation plan without evaluating: for safe queries
// the planner's strategy choice with its cost estimates, for unsafe ones
// the safe-subtree decomposition. The unit estimates are deterministic for
// a given run version (the planner's statistics are sampled with a fixed
// seed); the per-unit costs weighting them come from the process-wide
// measured timings once warm (CostSource reports which applied), so the
// chosen strategy can shift as calibration accumulates.
func (e *Engine) Explain(q *Query) (*PlanReport, error) {
	env, err := e.env(q)
	if err != nil {
		return nil, err
	}
	rep := &PlanReport{Query: q.node.String(), Safe: env.Safe()}
	if env.Safe() {
		n := e.run.NumNodes()
		dec := e.planner().Plan(env, n, n)
		rep.Strategy = fromPlanStrategy(dec.Strategy)
		rep.SeedTag, rep.SeedCount, rep.Reverse = dec.SeedTag, dec.SeedCount, dec.Reverse
		rep.CostRPL, rep.CostOptRPL, rep.CostSeeded = dec.CostRPL, dec.CostOptRPL, dec.CostSeeded
		rep.UnitNanosRPL, rep.UnitNanosOptRPL, rep.UnitNanosSeeded = dec.UnitNanosRPL, dec.UnitNanosOptRPL, dec.UnitNanosSeeded
		rep.CostSource = "static"
		if dec.Measured() {
			rep.CostSource = "measured"
		}
		return rep, nil
	}
	grep, err := e.general().Plan(q.node)
	if err != nil {
		return nil, err
	}
	rep.Strategy = Auto
	rep.Decomposed = true
	rep.SafeSubtrees = grep.SafeSubtrees
	rep.RelationalNodes = grep.RelationalNodes
	return rep, nil
}

// Evaluate returns the query's full result relation over all node pairs:
// safe queries run the planner-chosen all-pairs strategy, unsafe queries
// are decomposed into maximal safe subtrees plus a relational remainder
// (Section IV-B), with the cost model choosing per subtree. Safe scans run
// on the engine's worker pool. Pairs are sorted by (From, To).
func (e *Engine) Evaluate(q *Query) ([]Pair, error) {
	out, _, err := e.EvaluatePlanned(q)
	return out, err
}

// EvaluatePlanned is Evaluate returning the plan report alongside the
// pairs, so callers (the HTTP service, rpqcli) can surface which strategy
// actually answered.
func (e *Engine) EvaluatePlanned(q *Query) ([]Pair, *PlanReport, error) {
	env, err := e.env(q)
	if err != nil {
		return nil, nil, err
	}
	if !env.Safe() {
		// The evaluation itself produces the decomposition report — no
		// separate planning pass.
		rel, grep, err := e.general().Eval(q.node)
		if err != nil {
			return nil, nil, err
		}
		rep := &PlanReport{
			Query:           q.node.String(),
			Strategy:        Auto,
			Decomposed:      true,
			SafeSubtrees:    grep.SafeSubtrees,
			RelationalNodes: grep.RelationalNodes,
		}
		var out []Pair
		for _, p := range rel.Pairs() {
			out = append(out, Pair{From: NodeID(p[0]), To: NodeID(p[1])})
		}
		return out, rep, nil
	}
	rep, err := e.Explain(q)
	if err != nil {
		return nil, nil, err
	}
	all := e.run.AllNodes()
	out, err := e.AllPairs(q, all, all, rep.Strategy)
	if err != nil {
		return nil, nil, err
	}
	// Match the relational path's deterministic (From, To) order — the
	// strategies emit in their own scan orders.
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out, rep, nil
}

// fromPlanStrategy maps the planner's choice onto the public enum.
func fromPlanStrategy(s plan.Strategy) Strategy {
	switch s {
	case plan.RPL:
		return StrategyRPL
	case plan.Seeded:
		return StrategySeeded
	}
	return StrategyOptRPL
}

func (e *Engine) labelsOf(ids []NodeID) ([]label.Label, error) {
	lbls := e.labels()
	out := make([]label.Label, len(ids))
	for i, id := range ids {
		if err := e.checkNode(id); err != nil {
			return nil, err
		}
		out[i] = lbls[id]
	}
	return out, nil
}

// labelsUnchecked is labelsOf for ids the caller already validated.
func (e *Engine) labelsUnchecked(ids []NodeID) []label.Label {
	lbls := e.labels()
	out := make([]label.Label, len(ids))
	for i, id := range ids {
		out[i] = lbls[id]
	}
	return out
}

func (e *Engine) checkNodes(ids []NodeID) error {
	for _, id := range ids {
		if err := e.checkNode(id); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) checkNode(n NodeID) error {
	if n < 0 || int(n) >= e.run.r.NumNodes() {
		return fmt.Errorf("provrpq: node id %d out of range [0,%d)", n, e.run.r.NumNodes())
	}
	return nil
}
