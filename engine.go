package provrpq

import (
	"fmt"

	"provrpq/internal/automata"
	"provrpq/internal/baseline"
	"provrpq/internal/core"
	"provrpq/internal/index"
	"provrpq/internal/label"
	"provrpq/internal/reach"
)

// Query is a parsed regular path query.
type Query struct {
	node *automata.Node
	str  string
}

// ParseQuery parses the package's query syntax (see the package comment).
func ParseQuery(s string) (*Query, error) {
	n, err := automata.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Query{node: n, str: s}, nil
}

// MustParseQuery is ParseQuery panicking on error, for fixtures.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the canonical rendering of the query.
func (q *Query) String() string { return q.node.String() }

// Pair is one result of an all-pairs query.
type Pair struct {
	From, To NodeID
}

// Strategy selects the all-pairs evaluation plan for safe queries.
type Strategy int

const (
	// Auto uses OptRPL for safe queries and safe-subtree decomposition
	// (with the cost model) for unsafe ones.
	Auto Strategy = iota
	// StrategyRPL forces the nested-loop pairwise scan (paper Option S1).
	StrategyRPL
	// StrategyOptRPL forces the reachability-filtered scan (Option S2).
	StrategyOptRPL
	// StrategyG1 forces the relational baseline (Option G1).
	StrategyG1
)

// Engine evaluates queries over one run. It caches compiled query
// environments (minimal DFA, λ matrices, safety verdict, decode artifacts)
// and the run's inverted edge index; an Engine is not safe for concurrent
// use.
type Engine struct {
	run  *Run
	envs map[string]*core.Env
	ix   *index.Index
	gen  *core.General
	lbls []label.Label
}

// NewEngine prepares an engine over a run.
func NewEngine(run *Run) *Engine {
	e := &Engine{run: run, envs: map[string]*core.Env{}}
	for _, n := range run.r.Nodes {
		e.lbls = append(e.lbls, n.Label)
	}
	return e
}

// Run returns the engine's run.
func (e *Engine) Run() *Run { return e.run }

func (e *Engine) env(q *Query) (*core.Env, error) {
	key := q.node.String()
	if env, ok := e.envs[key]; ok {
		return env, nil
	}
	env, err := core.Compile(e.run.r.Spec, q.node)
	if err != nil {
		return nil, err
	}
	e.envs[key] = env
	return env, nil
}

func (e *Engine) index() *index.Index {
	if e.ix == nil {
		e.ix = index.Build(e.run.r)
	}
	return e.ix
}

func (e *Engine) general() *core.General {
	if e.gen == nil {
		e.gen = core.NewGeneral(e.run.r, e.index(), core.CostBased)
	}
	return e.gen
}

// IsSafe reports whether the query is safe for the run's specification
// (Definition 13; checked on the minimal DFA per Lemma 3.2).
func (e *Engine) IsSafe(q *Query) (bool, error) {
	env, err := e.env(q)
	if err != nil {
		return false, err
	}
	return env.Safe, nil
}

// IsSafeRelaxed additionally tries *context-restricted safety*, an
// extension beyond the paper: determinism is required only for DFA states
// that can actually arrive at a module's input on some run path. Strictly
// more queries qualify (e.g. a query whose ambiguity involves a state no
// path upstream of the module can produce). When relaxation succeeds, the
// cached environment becomes safe, so subsequent Pairwise and AllPairs
// calls on the same query use the constant-time label decode.
func (e *Engine) IsSafeRelaxed(q *Query) (bool, error) {
	env, err := e.env(q)
	if err != nil {
		return false, err
	}
	return env.RelaxSafety(), nil
}

// Pairwise answers u —R→ v. Safe queries are answered in constant time from
// the two node labels (Theorem 1); unsafe queries fall back to a rare-label
// product search over the run (Option G2).
func (e *Engine) Pairwise(q *Query, u, v NodeID) (bool, error) {
	if err := e.checkNode(u); err != nil {
		return false, err
	}
	if err := e.checkNode(v); err != nil {
		return false, err
	}
	env, err := e.env(q)
	if err != nil {
		return false, err
	}
	if env.Safe {
		return env.Pairwise(e.lbls[u], e.lbls[v])
	}
	g2 := baseline.NewG2(e.index(), q.node)
	return g2.Pairwise(toDerive([]NodeID{u})[0], toDerive([]NodeID{v})[0]), nil
}

// Reachable answers plain reachability u ⇝ v in constant time from labels.
func (e *Engine) Reachable(u, v NodeID) (bool, error) {
	if err := e.checkNode(u); err != nil {
		return false, err
	}
	if err := e.checkNode(v); err != nil {
		return false, err
	}
	return reach.Pairwise(e.run.r.Spec, e.lbls[u], e.lbls[v]), nil
}

// AllPairsReachable returns all reachable pairs of l1 × l2 in time linear
// in the lists and the output (Lemma 4.1's side effect).
func (e *Engine) AllPairsReachable(l1, l2 []NodeID) ([]Pair, error) {
	la, err := e.labelsOf(l1)
	if err != nil {
		return nil, err
	}
	lb, err := e.labelsOf(l2)
	if err != nil {
		return nil, err
	}
	var out []Pair
	reach.AllPairs(e.run.r.Spec, la, lb, func(i, j int) {
		out = append(out, Pair{From: l1[i], To: l2[j]})
	})
	return out, nil
}

// AllPairs returns all pairs (u,v) ∈ l1 × l2 with u —R→ v.
func (e *Engine) AllPairs(q *Query, l1, l2 []NodeID, strategy Strategy) ([]Pair, error) {
	la, err := e.labelsOf(l1)
	if err != nil {
		return nil, err
	}
	lb, err := e.labelsOf(l2)
	if err != nil {
		return nil, err
	}
	env, err := e.env(q)
	if err != nil {
		return nil, err
	}
	var out []Pair
	switch strategy {
	case StrategyRPL, StrategyOptRPL:
		if !env.Safe {
			return nil, fmt.Errorf("provrpq: query %s is unsafe; RPL/OptRPL require a safe query", q)
		}
		st := core.OptRPL
		if strategy == StrategyRPL {
			st = core.RPL
		}
		err := env.AllPairsSafe(la, lb, st, func(i, j int) {
			out = append(out, Pair{From: l1[i], To: l2[j]})
		})
		return out, err
	case StrategyG1:
		g1 := baseline.NewG1(e.index())
		g1.AllPairs(q.node, toDerive(l1), toDerive(l2), func(i, j int) {
			out = append(out, Pair{From: l1[i], To: l2[j]})
		})
		return out, nil
	default: // Auto
		if env.Safe {
			err := env.AllPairsSafe(la, lb, core.OptRPL, func(i, j int) {
				out = append(out, Pair{From: l1[i], To: l2[j]})
			})
			return out, err
		}
		rel, _, err := e.general().Eval(q.node)
		if err != nil {
			return nil, err
		}
		du, dv := toDerive(l1), toDerive(l2)
		for i, u := range l1 {
			for j, v := range l2 {
				if rel.Has(du[i], dv[j]) {
					out = append(out, Pair{From: u, To: v})
				}
			}
		}
		return out, nil
	}
}

// Evaluate returns the query's full result relation over all node pairs,
// decomposing unsafe queries into maximal safe subtrees plus a relational
// remainder (Section IV-B), with the cost model choosing per subtree.
func (e *Engine) Evaluate(q *Query) ([]Pair, error) {
	rel, _, err := e.general().Eval(q.node)
	if err != nil {
		return nil, err
	}
	var out []Pair
	for _, p := range rel.Pairs() {
		out = append(out, Pair{From: NodeID(p[0]), To: NodeID(p[1])})
	}
	return out, nil
}

// Explain describes how Evaluate would process the query — the safety
// verdict and the maximal safe subtrees — without evaluating it.
func (e *Engine) Explain(q *Query) (safe bool, safeSubtrees []string, err error) {
	rep, err := e.general().Plan(q.node)
	if err != nil {
		return false, nil, err
	}
	return rep.Safe, rep.SafeSubtrees, nil
}

func (e *Engine) labelsOf(ids []NodeID) ([]label.Label, error) {
	out := make([]label.Label, len(ids))
	for i, id := range ids {
		if err := e.checkNode(id); err != nil {
			return nil, err
		}
		out[i] = e.lbls[id]
	}
	return out, nil
}

func (e *Engine) checkNode(n NodeID) error {
	if n < 0 || int(n) >= len(e.lbls) {
		return fmt.Errorf("provrpq: node id %d out of range [0,%d)", n, len(e.lbls))
	}
	return nil
}
