package provrpq

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"provrpq/internal/derive"
	"provrpq/internal/metrics"
	"provrpq/internal/parallel"
	"provrpq/internal/store"
)

var (
	mBootSeconds = metrics.Default().Gauge("provrpq_boot_seconds",
		"Wall-clock seconds the last NewCatalogFromStore boot spent decoding and replaying.")
	mBootRuns = metrics.Default().Gauge("provrpq_boot_runs",
		"Runs restored by the last NewCatalogFromStore boot.")
	mBootBatches = metrics.Default().Gauge("provrpq_boot_replayed_batches",
		"Growth batches replayed by the last NewCatalogFromStore boot.")
)

// ErrStoreFailed marks a durable catalog mutation whose disk persistence
// failed. Nothing was registered — on a durable catalog an entry becomes
// visible only after its bytes are on disk — so the catalog and the store
// stay consistent and the name is free for a retry. Match with errors.Is
// to tell an infrastructure failure (disk full, permissions) from bad
// client input.
var ErrStoreFailed = errors.New("provrpq: store persistence failed")

// Store is a durable, disk-backed catalog store: named specifications and
// named runs (labels included), surviving process restarts. Specifications
// are stored as JSON; run bases and growth batches are persisted in the
// binary columnar format ("RPQC" — packed label column, endpoint columns,
// trailing checksum), which a restart opens zero-copy and memory-mapped
// instead of re-parsing JSON. Every run/batch reader sniffs the payload,
// so a data directory written by an older JSON-only build opens
// transparently: OpenStore rewrites legacy run bases to columnar once
// (preserving append logs, versions and compaction epochs) and records the
// migration in the manifest so subsequent opens skip the scan. The layout
// is <dir>/specs/<name>.json, <dir>/runs/<name>.json and a manifest
// binding each run to its specification. Writes are atomic (temp file +
// fsync + rename) and a run becomes visible only once its manifest entry
// lands, so a crash mid-save never surfaces a torn or half-registered
// entry. A Store is safe for concurrent use.
//
// Attach a Store to a Catalog via CatalogOptions.Store to persist every
// successful RegisterSpec/AddRun/DeriveRun, and rebuild the catalog after
// a restart with NewCatalogFromStore — labels are decoded from disk, so
// nothing is re-derived.
type Store struct {
	st *store.Store
	// migrated counts the legacy JSON run bases this OpenStore rewrote to
	// the columnar format (0 on every open after the first migration).
	migrated int
}

// storeFormatColumnar is the manifest format generation recording that
// every run base payload is columnar-native.
const storeFormatColumnar = 1

// OpenStore opens (creating if necessary) the store rooted at dir,
// migrating any legacy JSON run bases to the columnar format (see Store).
func OpenStore(dir string) (*Store, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("provrpq: %w", err)
	}
	s := &Store{st: st}
	if err := s.migrate(); err != nil {
		return nil, err
	}
	return s, nil
}

// migrate rewrites legacy JSON run bases as columnar payloads, in place at
// their current compaction epoch — append logs, run versions and epochs
// are untouched, so replay behaves exactly as before — then marks the
// manifest so the next open skips the scan entirely. Each rewrite is an
// atomic single-path replace of one logical run with a re-encoding of
// itself, so a crash at any point leaves every base readable (old or new
// bytes) and an unfinished migration simply resumes, skipping bases that
// are already columnar.
func (s *Store) migrate() error {
	format, err := s.st.Format()
	if err != nil {
		return fmt.Errorf("provrpq: %w", err)
	}
	if format >= storeFormatColumnar {
		return nil // fast path: migrated by a previous open
	}
	runs, _, bases, err := s.st.State()
	if err != nil {
		return fmt.Errorf("provrpq: %w", err)
	}
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)
	specs := map[string]*Spec{}
	for _, name := range names {
		data, err := s.st.GetRunData(name, bases[name])
		if err != nil {
			return fmt.Errorf("provrpq: %w", err)
		}
		if derive.IsColumnar(data) {
			continue // already rewritten (e.g. by a crashed migration)
		}
		specName := runs[name]
		sp := specs[specName]
		if sp == nil {
			if sp, err = s.LoadSpec(specName); err != nil {
				return fmt.Errorf("provrpq: store: migrating run %q: %w", name, err)
			}
			specs[specName] = sp
		}
		r, err := DecodeRun(sp, data)
		if err != nil {
			return fmt.Errorf("provrpq: store: migrating run %q: %w", name, err)
		}
		cdata, err := EncodeRunColumnar(r)
		if err != nil {
			return fmt.Errorf("provrpq: store: migrating run %q: %w", name, err)
		}
		if err := s.st.RewriteRunPayload(name, cdata); err != nil {
			return fmt.Errorf("provrpq: %w", err)
		}
		s.migrated++
	}
	if err := s.st.SetFormat(storeFormatColumnar); err != nil {
		return fmt.Errorf("provrpq: %w", err)
	}
	return nil
}

// MigratedRuns reports how many legacy JSON run bases this open rewrote to
// the columnar format (0 when the store was already columnar-native).
func (s *Store) MigratedRuns() int { return s.migrated }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.st.Dir() }

// SaveSpec durably writes a specification under name.
func (s *Store) SaveSpec(name string, sp *Spec) error {
	if sp == nil || sp.s == nil {
		return fmt.Errorf("provrpq: store: nil specification %q", name)
	}
	data, err := sp.MarshalJSON()
	if err != nil {
		return err
	}
	return s.st.PutSpec(name, data)
}

// LoadSpec reads and re-validates the specification stored under name.
func (s *Store) LoadSpec(name string) (*Spec, error) {
	data, err := s.st.GetSpec(name)
	if err != nil {
		return nil, fmt.Errorf("provrpq: %w", err)
	}
	sp := &Spec{}
	if err := sp.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("provrpq: store: specification %q: %w", name, err)
	}
	return sp, nil
}

// SaveRun durably writes a run under name, bound to the named
// specification (the columnar EncodeRunColumnar payload, which LoadRun
// and a catalog boot open zero-copy).
func (s *Store) SaveRun(name, specName string, r *Run) error {
	if r == nil || r.r == nil {
		return fmt.Errorf("provrpq: store: nil run %q", name)
	}
	data, err := EncodeRunColumnar(r)
	if err != nil {
		return err
	}
	return s.st.PutRun(name, specName, data)
}

// LoadRun reads the run stored under name and decodes it — full
// validation, labels included — against spec, which must be the
// specification instance registered under the run's bound specification
// name (label decoding depends on specification identity). The bound name
// is returned so callers can check the binding first via Runs.
func (s *Store) LoadRun(name string, spec *Spec) (*Run, string, error) {
	specName, data, err := s.st.GetRun(name)
	if err != nil {
		return nil, "", fmt.Errorf("provrpq: %w", err)
	}
	r, err := DecodeRun(spec, data)
	if err != nil {
		return nil, "", fmt.Errorf("provrpq: store: run %q: %w", name, err)
	}
	return r, specName, nil
}

// SpecNames lists the stored specification names, sorted.
func (s *Store) SpecNames() ([]string, error) {
	names, err := s.st.SpecNames()
	if err != nil {
		return nil, fmt.Errorf("provrpq: %w", err)
	}
	return names, nil
}

// Runs returns the stored run → specification binding.
func (s *Store) Runs() (map[string]string, error) {
	m, err := s.st.Runs()
	if err != nil {
		return nil, fmt.Errorf("provrpq: %w", err)
	}
	return m, nil
}

// Appends returns the stored run → committed-growth-batch count (runs
// that never grew are absent).
func (s *Store) Appends() (map[string]int, error) {
	m, err := s.st.Appends()
	if err != nil {
		return nil, fmt.Errorf("provrpq: %w", err)
	}
	return m, nil
}

// AppendRun durably commits one growth batch for the named stored run and
// returns its sequence number. The batch must decode (DecodeBatch) against
// the run's specification — Catalog.AppendEdges guarantees this; direct
// store users own the check. Batches persist in the columnar format;
// replay sniffs, so logs mixing columnar and legacy JSON batches replay
// identically.
func (s *Store) AppendRun(name string, b *Batch) (int, error) {
	if b == nil || b.spec == nil || b.spec.s == nil {
		return 0, fmt.Errorf("provrpq: nil batch")
	}
	data, err := derive.EncodeBatchColumnar(b.spec.s, b.b)
	if err != nil {
		return 0, err
	}
	seq, err := s.st.AppendRun(name, data)
	if err != nil {
		return 0, fmt.Errorf("provrpq: %w", err)
	}
	return seq, nil
}

// SetSerialCommit switches the store's append path between the coalescing
// group-commit protocol (the default, false) and the legacy serial
// protocol with one manifest write per batch. Both provide identical
// crash semantics; the serial path exists as the honest baseline for the
// ingest benchmark and as a bisection tool.
func (s *Store) SetSerialCommit(on bool) { s.st.SetSerialCommit(on) }

// Wedged reports whether the underlying store has latched its wedge: an
// ambiguous commit failure occurred and every further mutation is
// refused until the process reopens the directory. Reads still serve.
func (s *Store) Wedged() bool { return s.st.Wedged() }

// HasSpec reports whether a specification is stored under name.
func (s *Store) HasSpec(name string) bool { return s.st.HasSpec(name) }

// HasRun reports whether a run is stored under name.
func (s *Store) HasRun(name string) bool { return s.st.HasRun(name) }

// StoreSnapshot is a point-in-time listing of a store's contents, as
// served by rpqd's GET /v1/snapshot.
type StoreSnapshot struct {
	Dir   string
	Specs []string
	Runs  map[string]string // run name -> bound specification name
	// Appends counts the committed growth batches per run (runs that
	// never grew are absent) — what a restart replays on top of each
	// stored base run.
	Appends map[string]int
}

// Snapshot lists the store's committed contents. The run bindings and
// append counts come from one atomic manifest read (a racing append or
// compaction yields the before- or after-state, never a torn mix), and
// runs are read before specs: a run is only ever persisted after its
// specification (the catalog enforces spec-before-run) and specs are
// never deleted, so every specification a snapshot's run binding names is
// present in Specs.
func (s *Store) Snapshot() (StoreSnapshot, error) {
	runs, appends, _, err := s.st.State()
	if err != nil {
		return StoreSnapshot{}, fmt.Errorf("provrpq: %w", err)
	}
	specs, err := s.SpecNames()
	if err != nil {
		return StoreSnapshot{}, err
	}
	return StoreSnapshot{Dir: s.Dir(), Specs: specs, Runs: runs, Appends: appends}, nil
}

// NewCatalogFromStore rebuilds a catalog from a store's committed
// contents and attaches the store for subsequent persistence: every spec
// is re-validated, every run is decoded with its persisted labels — no
// re-derivation — and later RegisterSpec/AddRun/DeriveRun calls are
// durable before they return. opts.Store is ignored; st is used.
func NewCatalogFromStore(st *Store, opts CatalogOptions) (*Catalog, error) {
	bootStart := time.Now()
	opts.Store = nil
	c := NewCatalog(opts)
	specNames, err := st.SpecNames()
	if err != nil {
		return nil, err
	}
	for _, name := range specNames {
		sp, err := st.LoadSpec(name)
		if err != nil {
			return nil, err
		}
		if err := c.reg.PutSpec(name, sp); err != nil {
			return nil, err
		}
	}
	// One atomic manifest read: a compaction or append committing between
	// separate Runs/Appends/Bases reads could pair a folded base with its
	// pre-fold batch count and double-apply every folded batch.
	runs, appends, bases, err := st.st.State()
	if err != nil {
		return nil, fmt.Errorf("provrpq: %w", err)
	}
	runNames := make([]string, 0, len(runs))
	for name := range runs {
		runNames = append(runNames, name)
	}
	sort.Strings(runNames)
	// Runs are independent once every spec is registered, and decoding —
	// label unpacking plus full validation — dominates boot time, so fan
	// it across the worker pool; the registry inserts stay serial and in
	// sorted order, and the first error (in name order) wins so a failing
	// boot reports deterministically.
	decoded := make([]*Run, len(runNames))
	errs := make([]error, len(runNames))
	parallel.Do(len(runNames), parallel.Workers(opts.Workers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			name := runNames[i]
			specName := runs[name]
			sp, ok := c.reg.Spec(specName)
			if !ok {
				errs[i] = fmt.Errorf("provrpq: store: run %q is bound to specification %q, which the store does not contain", name, specName)
				continue
			}
			// The binding, batch count and base epoch are already in hand
			// from the manifest reads above, so fetch just the payload
			// (LoadRun would re-read the manifest for every run) — memory
			// mapped, so a columnar base is opened zero-copy over the file
			// instead of being copied through the heap.
			data, err := st.st.GetRunDataMapped(name, bases[name])
			if err != nil {
				errs[i] = fmt.Errorf("provrpq: %w", err)
				continue
			}
			var r *Run
			if derive.IsColumnar(data) {
				// The store's own payloads are trusted (persisted from
				// validated runs, checksummed): open them with the lazy
				// columnar path, which defers name-map and adjacency
				// construction and never materializes labels.
				dr, derr := derive.OpenColumnar(sp.s, data)
				if derr != nil {
					errs[i] = fmt.Errorf("provrpq: store: run %q: %w", name, derr)
					continue
				}
				r = &Run{r: dr, spec: sp}
			} else if r, err = DecodeRun(sp, data); err != nil {
				errs[i] = fmt.Errorf("provrpq: store: run %q: %w", name, err)
				continue
			}
			// Replay the run's append log in commit order, growing the
			// decoded base in place (nothing shares it yet): the restored
			// run is the exact version the last successful AppendEdges
			// published. Like the base decode, replay re-validates every
			// batch, so a corrupted log fails the boot deterministically
			// instead of serving a half-grown run.
			for seq := 0; seq < appends[name]; seq++ {
				// The committed count is in hand from the single manifest
				// read above; fetch just the batch payload.
				bdata, err := st.st.GetRunAppendData(name, seq)
				if err != nil {
					errs[i] = fmt.Errorf("provrpq: %w", err)
					break
				}
				b, err := derive.DecodeBatch(sp.s, bdata)
				if err != nil {
					errs[i] = fmt.Errorf("provrpq: store: run %q append %d: %w", name, seq, err)
					break
				}
				if _, err := derive.AppendEdges(r.r, b); err != nil {
					errs[i] = fmt.Errorf("provrpq: store: run %q append %d: %w", name, seq, err)
					break
				}
			}
			if errs[i] == nil {
				decoded[i] = r
			}
		}
	})
	for i, name := range runNames {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if err := c.reg.PutRun(name, runs[name], decoded[i]); err != nil {
			return nil, err
		}
		// The run's version counts all batches ever applied, replayed ones
		// included, so it is stable across restarts.
		if n := appends[name]; n > 0 {
			c.reg.SetRunGeneration(name, n)
		}
	}
	c.store = st
	replayed := 0
	for _, n := range appends {
		replayed += n
	}
	mBootSeconds.Set(time.Since(bootStart).Seconds())
	mBootRuns.Set(float64(len(runNames)))
	mBootBatches.Set(float64(replayed))
	return c, nil
}
